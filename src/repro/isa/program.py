"""Program container: instructions, labels, data segments, slice regions.

A :class:`Program` is the unit the simulator executes and the amnesic
compiler rewrites.  Besides the instruction stream and its labels it
carries:

* a :class:`DataSegment` describing initial memory contents, with
  optional read-only ranges — the paper's "read-only values to be loaded
  from memory, such as program inputs" (section 2.2) that can never be
  recomputed;
* :class:`SliceRegion` records locating each embedded recomputation
  slice.  Slices live after the final ``HALT`` so normal control flow can
  only enter them through an ``RCMP`` branch, mirroring how the paper's
  compiler "inserts the constructed RSlice in the binary" (section 3.1.2).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..errors import ValidationError
from .instructions import Instruction
from .opcodes import Opcode

Number = Union[int, float]


@dataclasses.dataclass
class DataSegment:
    """Initial memory image of a program.

    ``cells`` maps word addresses to initial values.  Addresses inside
    ``read_only`` ranges are program inputs: stores to them fault, and
    the amnesic compiler treats loads from them as non-recomputable.
    """

    cells: Dict[int, Number] = dataclasses.field(default_factory=dict)
    read_only: List[Tuple[int, int]] = dataclasses.field(default_factory=list)

    def place(self, base: int, values: List[Number], read_only: bool = False) -> int:
        """Place *values* consecutively starting at *base*; return next free address."""
        for i, value in enumerate(values):
            self.cells[base + i] = value
        if read_only and values:
            self.read_only.append((base, base + len(values)))
        return base + len(values)

    def is_read_only(self, address: int) -> bool:
        """True if *address* falls inside a read-only range."""
        return any(lo <= address < hi for lo, hi in self.read_only)

    def copy(self) -> "DataSegment":
        return DataSegment(dict(self.cells), list(self.read_only))


@dataclasses.dataclass
class SliceRegion:
    """Location and ownership of one embedded recomputation slice."""

    slice_id: int
    entry_label: str
    start: int
    end: int  # index one past the slice's RTN
    load_pc: int  # static pc of the owning RCMP

    def __contains__(self, pc: int) -> bool:
        return self.start <= pc < self.end


class Program:
    """An assembled program: instruction stream + labels + data + slices."""

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self.instructions: List[Instruction] = []
        self.labels: Dict[str, int] = {}
        self.data = DataSegment()
        self.slices: Dict[int, SliceRegion] = {}

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------
    def append(self, instruction: Instruction) -> int:
        """Append *instruction*; return its pc."""
        self.instructions.append(instruction)
        return len(self.instructions) - 1

    def add_label(self, label: str, pc: Optional[int] = None) -> None:
        """Bind *label* to *pc* (default: the next appended instruction)."""
        if label in self.labels:
            raise ValidationError(f"duplicate label: {label}")
        self.labels[label] = len(self.instructions) if pc is None else pc

    def register_slice(self, region: SliceRegion) -> None:
        """Record an embedded slice region."""
        if region.slice_id in self.slices:
            raise ValidationError(f"duplicate slice id: {region.slice_id}")
        self.slices[region.slice_id] = region

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def instruction_at(self, pc: int) -> Instruction:
        """The instruction at *pc* (raises ``IndexError`` when out of range)."""
        return self.instructions[pc]

    def pc_of(self, label: str) -> int:
        """Resolve *label* to a pc."""
        try:
            return self.labels[label]
        except KeyError:
            raise ValidationError(f"undefined label: {label}") from None

    def label_at(self, pc: int) -> Optional[str]:
        """The first label bound to *pc*, if any."""
        for label, bound in self.labels.items():
            if bound == pc:
                return label
        return None

    def slice_containing(self, pc: int) -> Optional[SliceRegion]:
        """The slice region containing *pc*, if any."""
        for region in self.slices.values():
            if pc in region:
                return region
        return None

    def static_loads(self) -> List[int]:
        """PCs of all LD instructions outside slice regions."""
        return [
            pc
            for pc, instruction in enumerate(self.instructions)
            if instruction.opcode is Opcode.LD and self.slice_containing(pc) is None
        ]

    def static_rcmp(self) -> List[int]:
        """PCs of all RCMP instructions."""
        return [
            pc
            for pc, instruction in enumerate(self.instructions)
            if instruction.opcode is Opcode.RCMP
        ]

    # ------------------------------------------------------------------
    # Rendering.
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable disassembly, with labels and slice markers."""
        pc_labels: Dict[int, List[str]] = {}
        for label, pc in self.labels.items():
            pc_labels.setdefault(pc, []).append(label)
        lines = []
        for pc, instruction in enumerate(self.instructions):
            for label in sorted(pc_labels.get(pc, [])):
                lines.append(f"{label}:")
            region = self.slice_containing(pc)
            marker = f"  ; RSlice {region.slice_id}" if region and pc == region.start else ""
            lines.append(f"  {pc:5d}  {instruction}{marker}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Program({self.name!r}, {len(self.instructions)} instructions, "
            f"{len(self.slices)} slices)"
        )
