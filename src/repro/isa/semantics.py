"""Pure value semantics for the compute opcodes.

The classic CPU interpreter and the amnesic recomputation engine both
evaluate instructions through this module, which guarantees that a
recomputed value is bit-identical to the originally computed one — the
correctness invariant of amnesic execution.

Integer results wrap to 64-bit two's complement, matching the 64-bit
datapath the paper assumes (Table 1 compares 64-bit loads against 64-bit
FMAs).  Floating point uses the host ``float`` (IEEE-754 double).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Sequence, Union

from ..errors import ArithmeticFault
from .opcodes import Opcode

Value = Union[int, float]

_INT64_MASK = (1 << 64) - 1
_INT64_SIGN = 1 << 63


def wrap_int64(value: int) -> int:
    """Wrap an unbounded Python int to signed 64-bit two's complement."""
    value &= _INT64_MASK
    if value & _INT64_SIGN:
        value -= 1 << 64
    return value


def _to_int(value: Value) -> int:
    if isinstance(value, float):
        return wrap_int64(int(value))
    return wrap_int64(value)


def _to_float(value: Value) -> float:
    return float(value)


def _int_div(a: int, b: int) -> int:
    if b == 0:
        raise ArithmeticFault("integer division by zero")
    # C-style truncating division, as in real ISAs.
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient
    return wrap_int64(quotient)


def _int_rem(a: int, b: int) -> int:
    if b == 0:
        raise ArithmeticFault("integer remainder by zero")
    return wrap_int64(a - _int_div(a, b) * b)


def _fdiv(a: float, b: float) -> float:
    if b == 0.0:
        raise ArithmeticFault("floating-point division by zero")
    return a / b


def _fsqrt(a: float) -> float:
    if a < 0.0:
        raise ArithmeticFault("square root of negative value")
    return math.sqrt(a)


_EVALUATORS: Dict[Opcode, Callable[..., Value]] = {
    Opcode.ADD: lambda a, b: wrap_int64(_to_int(a) + _to_int(b)),
    Opcode.SUB: lambda a, b: wrap_int64(_to_int(a) - _to_int(b)),
    Opcode.MUL: lambda a, b: wrap_int64(_to_int(a) * _to_int(b)),
    Opcode.DIV: lambda a, b: _int_div(_to_int(a), _to_int(b)),
    Opcode.REM: lambda a, b: _int_rem(_to_int(a), _to_int(b)),
    Opcode.AND: lambda a, b: wrap_int64(_to_int(a) & _to_int(b)),
    Opcode.OR: lambda a, b: wrap_int64(_to_int(a) | _to_int(b)),
    Opcode.XOR: lambda a, b: wrap_int64(_to_int(a) ^ _to_int(b)),
    Opcode.SHL: lambda a, b: wrap_int64(_to_int(a) << (_to_int(b) & 63)),
    Opcode.SHR: lambda a, b: wrap_int64(_to_int(a) >> (_to_int(b) & 63)),
    Opcode.SLT: lambda a, b: int(_to_int(a) < _to_int(b)),
    Opcode.SLE: lambda a, b: int(_to_int(a) <= _to_int(b)),
    Opcode.SEQ: lambda a, b: int(a == b),
    Opcode.SNE: lambda a, b: int(a != b),
    Opcode.MIN: lambda a, b: min(_to_int(a), _to_int(b)),
    Opcode.MAX: lambda a, b: max(_to_int(a), _to_int(b)),
    Opcode.FADD: lambda a, b: _to_float(a) + _to_float(b),
    Opcode.FSUB: lambda a, b: _to_float(a) - _to_float(b),
    Opcode.FMUL: lambda a, b: _to_float(a) * _to_float(b),
    Opcode.FDIV: lambda a, b: _fdiv(_to_float(a), _to_float(b)),
    Opcode.FMA: lambda a, b, c: _to_float(a) * _to_float(b) + _to_float(c),
    Opcode.FMIN: lambda a, b: min(_to_float(a), _to_float(b)),
    Opcode.FMAX: lambda a, b: max(_to_float(a), _to_float(b)),
    Opcode.FSQRT: lambda a: _fsqrt(_to_float(a)),
    Opcode.FABS: lambda a: abs(_to_float(a)),
    Opcode.FNEG: lambda a: -_to_float(a),
    Opcode.CVTIF: lambda a: _to_float(_to_int(a)),
    Opcode.CVTFI: lambda a: _to_int(a),
    Opcode.MOV: lambda a: a,
    Opcode.LI: lambda a: a,
}

_BRANCH_CONDITIONS: Dict[Opcode, Callable[[Value, Value], bool]] = {
    Opcode.BEQ: lambda a, b: a == b,
    Opcode.BNE: lambda a, b: a != b,
    Opcode.BLT: lambda a, b: a < b,
    Opcode.BGE: lambda a, b: a >= b,
}


def evaluate(opcode: Opcode, operands: Sequence[Value]) -> Value:
    """Evaluate a compute *opcode* over already-resolved operand values."""
    try:
        fn = _EVALUATORS[opcode]
    except KeyError:
        raise ArithmeticFault(f"{opcode.value} has no value semantics") from None
    return fn(*operands)


def branch_taken(opcode: Opcode, a: Value, b: Value) -> bool:
    """Resolve a conditional branch."""
    try:
        fn = _BRANCH_CONDITIONS[opcode]
    except KeyError:
        raise ArithmeticFault(f"{opcode.value} is not a branch") from None
    return fn(a, b)
