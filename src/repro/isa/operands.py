"""Operand model for the mini RISC ISA.

Ordinary program instructions use :class:`Reg` and :class:`Imm` operands.
Recomputing instructions embedded in a slice additionally use
:class:`SReg` (a scratch-file register, paper section 3.2) and
:class:`HistRef` (a non-recomputable leaf input read from the history
table, paper sections 2.2 and 3.2).  Keeping the operand kind explicit in
the IR mirrors the paper's annotation scheme, where "the compiler changes
source register identifiers of leaf instructions reading their operands
from Hist to an invalid number" (section 3.5).
"""

from __future__ import annotations

import dataclasses
from typing import Union

#: Number of architectural registers.  ``r0`` is hardwired to zero.
NUM_REGISTERS = 32


@dataclasses.dataclass(frozen=True)
class Reg:
    """An architectural register reference ``r0 .. r31``."""

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < NUM_REGISTERS:
            raise ValueError(f"register index out of range: {self.index}")

    def __str__(self) -> str:
        return f"r{self.index}"


@dataclasses.dataclass(frozen=True)
class Imm:
    """An immediate (constant) operand."""

    value: Union[int, float]

    def __str__(self) -> str:
        return f"#{self.value}"


@dataclasses.dataclass(frozen=True)
class SReg:
    """A scratch-file register used only inside recomputation slices.

    SReg indices are virtual: the amnesic Renamer maps them to physical
    SFile entries at runtime, exactly like rename logic maps architectural
    to physical registers in an out-of-order core (paper section 3.2).
    """

    index: int

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"scratch register index must be >= 0: {self.index}")

    def __str__(self) -> str:
        return f"s{self.index}"


@dataclasses.dataclass(frozen=True)
class HistRef:
    """A leaf input operand supplied by the history table at runtime.

    ``leaf_id`` identifies the leaf instruction within its slice (the
    paper's ``leaf-address``); ``slot`` selects which of the leaf's
    checkpointed source operands to read.
    """

    leaf_id: int
    slot: int

    def __post_init__(self) -> None:
        if self.leaf_id < 0 or self.slot < 0:
            raise ValueError(f"invalid HistRef({self.leaf_id}, {self.slot})")

    def __str__(self) -> str:
        return f"h{self.leaf_id}.{self.slot}"


Operand = Union[Reg, Imm, SReg, HistRef]

#: Register index conventionally hardwired to integer zero.
ZERO_REG = Reg(0)


def is_constant(operand: Operand) -> bool:
    """True if *operand* needs no storage to be available at recompute time."""
    return isinstance(operand, Imm)


def parse_operand(text: str) -> Operand:
    """Parse the assembler spelling of an operand.

    >>> parse_operand("r5")
    Reg(index=5)
    >>> parse_operand("#3.5")
    Imm(value=3.5)
    >>> parse_operand("s2")
    SReg(index=2)
    >>> parse_operand("h1.0")
    HistRef(leaf_id=1, slot=0)
    """
    text = text.strip()
    if not text:
        raise ValueError("empty operand")
    if text.startswith("#"):
        body = text[1:]
        try:
            return Imm(int(body, 0))
        except ValueError:
            return Imm(float(body))
    if text.startswith("r") and text[1:].isdigit():
        return Reg(int(text[1:]))
    if text.startswith("s") and text[1:].isdigit():
        return SReg(int(text[1:]))
    if text.startswith("h"):
        leaf, _, slot = text[1:].partition(".")
        if leaf.isdigit() and slot.isdigit():
            return HistRef(int(leaf), int(slot))
    raise ValueError(f"unparseable operand: {text!r}")
