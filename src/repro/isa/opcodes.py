"""Opcode and instruction-category definitions for the mini RISC ISA.

The AMNESIAC paper operates on a RISC-style ISA (paper section 3.4 assumes
one explicitly).  This module defines the opcode vocabulary used throughout
the reproduction, together with the *category* of each opcode.  Categories
matter because the energy model charges energy per instruction (EPI) by
category, exactly as the paper's compiler computes the recomputation cost
``E_rc`` from "[instruction count per category] x [EPI per category]"
(paper section 3.1.1).
"""

from __future__ import annotations

import enum


class Category(enum.Enum):
    """Energy/semantics category of an opcode.

    ``INT_*`` and ``FP_*`` categories are the "Non-mem" instructions of the
    paper's Table 4; ``LOAD``/``STORE`` are the memory instructions whose
    energy dominates classic execution; ``BRANCH``/``JUMP`` are control
    flow; ``AMNESIC`` covers the three ISA extensions RCMP/RTN/REC
    introduced in paper section 3.1.2.
    """

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    FP_ALU = "fp_alu"
    FP_MUL = "fp_mul"
    FP_DIV = "fp_div"
    FP_FMA = "fp_fma"
    MOVE = "move"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    NOP = "nop"
    HALT = "halt"
    AMNESIC = "amnesic"

    @property
    def is_memory(self) -> bool:
        """True for instructions that access the data memory hierarchy."""
        return self in (Category.LOAD, Category.STORE)

    @property
    def is_compute(self) -> bool:
        """True for value-producing ALU/FPU instructions ("Non-mem")."""
        return self in _COMPUTE_CATEGORIES

    @property
    def is_control(self) -> bool:
        """True for instructions that may redirect the program counter."""
        return self in (Category.BRANCH, Category.JUMP, Category.HALT)


_COMPUTE_CATEGORIES = frozenset(
    {
        Category.INT_ALU,
        Category.INT_MUL,
        Category.INT_DIV,
        Category.FP_ALU,
        Category.FP_MUL,
        Category.FP_DIV,
        Category.FP_FMA,
        Category.MOVE,
    }
)


class Opcode(enum.Enum):
    """The opcode vocabulary of the mini ISA.

    Arithmetic opcodes accept register or immediate source operands (the
    assembler folds the classic ``ADDI``-style forms into the same opcode),
    which keeps the opcode table small without losing RISC flavour.
    """

    # Integer ALU.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    SLT = "slt"
    SLE = "sle"
    SEQ = "seq"
    SNE = "sne"
    MIN = "min"
    MAX = "max"

    # Floating point.
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FMA = "fma"
    FMIN = "fmin"
    FMAX = "fmax"
    FSQRT = "fsqrt"
    FABS = "fabs"
    FNEG = "fneg"
    CVTIF = "cvtif"
    CVTFI = "cvtfi"

    # Data movement.
    MOV = "mov"
    LI = "li"

    # Memory.
    LD = "ld"
    ST = "st"

    # Control flow.
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    JMP = "jmp"
    JAL = "jal"  # jump-and-link: call a subroutine, saving the return pc
    JR = "jr"  # jump-register: return through a link register
    NOP = "nop"
    HALT = "halt"

    # Amnesic ISA extensions (paper section 3.1.2).
    RCMP = "rcmp"  # fused conditional-branch + load
    RTN = "rtn"  # return from a recomputation slice
    REC = "rec"  # checkpoint non-recomputable leaf inputs into Hist

    @property
    def category(self) -> Category:
        """The energy/semantics category of this opcode."""
        return _OPCODE_CATEGORY[self]

    @property
    def is_memory(self) -> bool:
        return self.category.is_memory

    @property
    def is_compute(self) -> bool:
        return self.category.is_compute

    @property
    def is_amnesic(self) -> bool:
        return self.category is Category.AMNESIC


_OPCODE_CATEGORY = {
    Opcode.ADD: Category.INT_ALU,
    Opcode.SUB: Category.INT_ALU,
    Opcode.MUL: Category.INT_MUL,
    Opcode.DIV: Category.INT_DIV,
    Opcode.REM: Category.INT_DIV,
    Opcode.AND: Category.INT_ALU,
    Opcode.OR: Category.INT_ALU,
    Opcode.XOR: Category.INT_ALU,
    Opcode.SHL: Category.INT_ALU,
    Opcode.SHR: Category.INT_ALU,
    Opcode.SLT: Category.INT_ALU,
    Opcode.SLE: Category.INT_ALU,
    Opcode.SEQ: Category.INT_ALU,
    Opcode.SNE: Category.INT_ALU,
    Opcode.MIN: Category.INT_ALU,
    Opcode.MAX: Category.INT_ALU,
    Opcode.FADD: Category.FP_ALU,
    Opcode.FSUB: Category.FP_ALU,
    Opcode.FMUL: Category.FP_MUL,
    Opcode.FDIV: Category.FP_DIV,
    Opcode.FMA: Category.FP_FMA,
    Opcode.FMIN: Category.FP_ALU,
    Opcode.FMAX: Category.FP_ALU,
    Opcode.FSQRT: Category.FP_DIV,
    Opcode.FABS: Category.FP_ALU,
    Opcode.FNEG: Category.FP_ALU,
    Opcode.CVTIF: Category.FP_ALU,
    Opcode.CVTFI: Category.FP_ALU,
    Opcode.MOV: Category.MOVE,
    Opcode.LI: Category.MOVE,
    Opcode.LD: Category.LOAD,
    Opcode.ST: Category.STORE,
    Opcode.BEQ: Category.BRANCH,
    Opcode.BNE: Category.BRANCH,
    Opcode.BLT: Category.BRANCH,
    Opcode.BGE: Category.BRANCH,
    Opcode.JMP: Category.JUMP,
    Opcode.JAL: Category.JUMP,
    Opcode.JR: Category.JUMP,
    Opcode.NOP: Category.NOP,
    Opcode.HALT: Category.HALT,
    Opcode.RCMP: Category.AMNESIC,
    Opcode.RTN: Category.AMNESIC,
    Opcode.REC: Category.AMNESIC,
}

#: Opcodes that produce a register value and are therefore eligible to
#: appear inside a recomputation slice.  Paper section 3.4: "the amnesic
#: microarchitecture only processes instructions with register source
#: operands and register destinations, and excludes memory or control flow
#: instructions".
SLICEABLE_OPCODES = frozenset(op for op in Opcode if op.is_compute)

#: Number of source operands each opcode consumes (excluding branch
#: targets and amnesic metadata).
ARITY = {
    **{op: 2 for op in Opcode if op.is_compute},
    Opcode.FMA: 3,
    Opcode.FSQRT: 1,
    Opcode.FABS: 1,
    Opcode.FNEG: 1,
    Opcode.CVTIF: 1,
    Opcode.CVTFI: 1,
    Opcode.MOV: 1,
    Opcode.LI: 1,
    Opcode.LD: 2,
    Opcode.ST: 3,
    Opcode.BEQ: 2,
    Opcode.BNE: 2,
    Opcode.BLT: 2,
    Opcode.BGE: 2,
    Opcode.JMP: 0,
    Opcode.JAL: 0,
    Opcode.JR: 1,
    Opcode.NOP: 0,
    Opcode.HALT: 0,
    Opcode.RCMP: 2,
    Opcode.RTN: 0,
    Opcode.REC: 0,  # REC carries a variable-length checkpoint list instead
}

#: The maximum number of renaming requests a recomputing instruction can
#: raise: max #sources + max #destinations (paper section 3.4 derives 3
#: for a 2-source RISC; our FMA raises it to 4 and tests cover both).
MAX_RENAME_REQUESTS = max(ARITY[op] for op in SLICEABLE_OPCODES) + 1
