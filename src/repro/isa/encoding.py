"""Textual assembly: serialise programs to text and parse them back.

The format is line-oriented.  Directives start with a dot::

    .name kernel
    .data 4096 rw 0 0 0 0
    .data 8192 ro 1.5 2.5
    .label loop_top 2
    .slice 3 entry=rslice_3 start=40 end=44 load_pc=7

Instruction lines mirror :meth:`Instruction.__str__`::

    add r1, r2, #4
    ld r3, r1, #0
    beq r1, r2 -> loop_top
    rcmp r3, r1, #0 -> rslice_3 [slice=3]
    fmul s1, h0.0, s0 [leaf=0]

Round-tripping (``parse(serialise(p))``) reproduces the program exactly;
property tests rely on this.
"""

from __future__ import annotations

import re
from typing import Iterator, List, Optional, Tuple, Union

from ..errors import AssemblyError
from .instructions import Instruction
from .opcodes import ARITY, Opcode
from .operands import parse_operand
from .program import DataSegment, Program, SliceRegion

_HAS_DEST = {
    op: (op.is_compute or op in (Opcode.LD, Opcode.RCMP, Opcode.RTN, Opcode.JAL))
    for op in Opcode
}

_ANNOTATION_RE = re.compile(r"\[([^\]]*)\]")
_TARGET_RE = re.compile(r"->\s*(\S+)")


def serialise(program: Program) -> str:
    """Serialise *program* (instructions, labels, data, slices) to text."""
    lines = [f".name {program.name}"]
    for (lo, hi) in sorted(program.data.read_only):
        values = " ".join(_format_number(program.data.cells[a]) for a in range(lo, hi))
        lines.append(f".data {lo} ro {values}")
    writable = sorted(
        a for a in program.data.cells if not program.data.is_read_only(a)
    )
    for base, values in _contiguous_runs(writable, program.data):
        rendered = " ".join(_format_number(v) for v in values)
        lines.append(f".data {base} rw {rendered}")
    for label in sorted(program.labels):
        lines.append(f".label {label} {program.labels[label]}")
    for region in sorted(program.slices.values(), key=lambda r: r.slice_id):
        lines.append(
            f".slice {region.slice_id} entry={region.entry_label} "
            f"start={region.start} end={region.end} load_pc={region.load_pc}"
        )
    for instruction in program.instructions:
        lines.append(_serialise_instruction(instruction))
    return "\n".join(lines) + "\n"


def parse(text: str) -> Program:
    """Parse assembly *text* back into a program."""
    program = Program()
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip() if not raw.strip().startswith(".") else raw.strip()
        if not line:
            continue
        try:
            if line.startswith("."):
                _parse_directive(program, line)
            else:
                program.append(_parse_instruction(line))
        except (ValueError, AssemblyError) as exc:
            raise AssemblyError(f"line {line_number}: {exc}") from None
    return program


# ----------------------------------------------------------------------
# Serialisation helpers.
# ----------------------------------------------------------------------
def _format_number(value) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _contiguous_runs(
    addresses: List[int], data: DataSegment
) -> Iterator[Tuple[int, List[Union[int, float]]]]:
    run_base: Optional[int] = None
    run_values: List[Union[int, float]] = []
    previous = None
    for address in addresses:
        if run_base is None:
            run_base, run_values = address, [data.cells[address]]
        elif previous is not None and address == previous + 1:
            run_values.append(data.cells[address])
        else:
            yield run_base, run_values
            run_base, run_values = address, [data.cells[address]]
        previous = address
    if run_base is not None:
        yield run_base, run_values


def _serialise_instruction(instruction: Instruction) -> str:
    parts = [instruction.opcode.value]
    operands = []
    if instruction.dest is not None:
        operands.append(str(instruction.dest))
    operands.extend(str(src) for src in instruction.srcs)
    if operands:
        parts.append(", ".join(operands))
    if instruction.target is not None:
        parts.append(f"-> {instruction.target}")
    annotations = []
    if instruction.slice_id is not None:
        annotations.append(f"slice={instruction.slice_id}")
    if instruction.leaf_id is not None:
        annotations.append(f"leaf={instruction.leaf_id}")
    if annotations:
        parts.append("[" + ", ".join(annotations) + "]")
    return " ".join(parts)


# ----------------------------------------------------------------------
# Parsing helpers.
# ----------------------------------------------------------------------
def _parse_directive(program: Program, line: str) -> None:
    fields = line.split()
    directive = fields[0]
    if directive == ".name":
        program.name = fields[1] if len(fields) > 1 else "program"
    elif directive == ".data":
        base = int(fields[1])
        mode = fields[2]
        values = [_parse_number(f) for f in fields[3:]]
        program.data.place(base, values, read_only=(mode == "ro"))
    elif directive == ".label":
        program.add_label(fields[1], int(fields[2]))
    elif directive == ".slice":
        keyed = dict(field.split("=", 1) for field in fields[2:])
        program.register_slice(
            SliceRegion(
                slice_id=int(fields[1]),
                entry_label=keyed["entry"],
                start=int(keyed["start"]),
                end=int(keyed["end"]),
                load_pc=int(keyed["load_pc"]),
            )
        )
    else:
        raise AssemblyError(f"unknown directive {directive}")


def _parse_number(text: str) -> Union[int, float]:
    try:
        return int(text, 0)
    except ValueError:
        return float(text)


def _parse_instruction(line: str) -> Instruction:
    slice_id = leaf_id = None
    annotation_match = _ANNOTATION_RE.search(line)
    if annotation_match:
        for item in annotation_match.group(1).split(","):
            key, _, value = item.strip().partition("=")
            if key == "slice":
                slice_id = int(value)
            elif key == "leaf":
                leaf_id = int(value)
            else:
                raise AssemblyError(f"unknown annotation {key!r}")
        line = line[: annotation_match.start()].strip()
    target = None
    target_match = _TARGET_RE.search(line)
    if target_match:
        target = target_match.group(1)
        line = line[: target_match.start()].strip()
    mnemonic, _, rest = line.partition(" ")
    try:
        opcode = Opcode(mnemonic.strip())
    except ValueError:
        raise AssemblyError(f"unknown opcode {mnemonic!r}") from None
    operands = [parse_operand(tok) for tok in rest.split(",") if tok.strip()]
    dest = None
    if _HAS_DEST[opcode]:
        if not operands:
            raise AssemblyError(f"{opcode.value} requires a destination")
        dest = operands.pop(0)
    expected = ARITY.get(opcode)
    if expected is not None and opcode is not Opcode.REC and len(operands) != expected:
        raise AssemblyError(
            f"{opcode.value} expects {expected} sources, got {len(operands)}"
        )
    return Instruction(
        opcode,
        dest=dest,
        srcs=tuple(operands),
        target=target,
        slice_id=slice_id,
        leaf_id=leaf_id,
    )
