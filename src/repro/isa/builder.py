"""A small DSL for writing kernels in the mini ISA.

:class:`ProgramBuilder` keeps kernel code readable: named registers, a
bump allocator for data placement, structured ``loop``/``when`` blocks
that lower to labels and branches, and thin wrappers over the common
opcodes.  Workload generators (``repro.workloads``) are the main client.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Optional, Sequence, Union

from ..errors import ValidationError
from .instructions import Instruction, alu, branch, halt, jump, li, load, store
from .opcodes import Opcode
from .operands import NUM_REGISTERS, Imm, Operand, Reg
from .program import Number, Program

#: First word address handed out by the builder's data allocator.  Leaving
#: low addresses unused catches stray zero-base accesses in tests.
DATA_BASE = 0x1000

_INVERSE_BRANCH = {
    Opcode.BEQ: Opcode.BNE,
    Opcode.BNE: Opcode.BEQ,
    Opcode.BLT: Opcode.BGE,
    Opcode.BGE: Opcode.BLT,
}


class ProgramBuilder:
    """Incrementally builds a :class:`~repro.isa.program.Program`."""

    def __init__(self, name: str = "program") -> None:
        self.program = Program(name)
        self._next_register = 1  # r0 is hardwired zero
        self._named_registers = {}
        self._next_data = DATA_BASE
        self._label_counter = 0

    # ------------------------------------------------------------------
    # Registers and data.
    # ------------------------------------------------------------------
    def reg(self, name: str) -> Reg:
        """Return the register bound to *name*, allocating on first use."""
        if name not in self._named_registers:
            if self._next_register >= NUM_REGISTERS:
                raise ValidationError(
                    f"out of architectural registers while allocating {name!r}"
                )
            self._named_registers[name] = Reg(self._next_register)
            self._next_register += 1
        return self._named_registers[name]

    def regs(self, *names: str) -> List[Reg]:
        """Allocate/fetch several named registers at once."""
        return [self.reg(name) for name in names]

    @property
    def zero(self) -> Reg:
        """The hardwired zero register r0."""
        return Reg(0)

    def data(self, values: Sequence[Number], read_only: bool = False) -> int:
        """Place *values* in memory; return their base word address."""
        base = self._next_data
        self._next_data = self.program.data.place(base, list(values), read_only)
        return base

    def reserve(self, count: int, fill: Number = 0) -> int:
        """Reserve *count* writable words initialised to *fill*."""
        return self.data([fill] * count, read_only=False)

    # ------------------------------------------------------------------
    # Raw emission.
    # ------------------------------------------------------------------
    def emit(self, instruction: Instruction) -> int:
        """Append a raw instruction; return its pc."""
        return self.program.append(instruction)

    def label(self, name: Optional[str] = None) -> str:
        """Bind a (possibly fresh) label to the next instruction."""
        if name is None:
            name = self.fresh_label("L")
        self.program.add_label(name)
        return name

    def fresh_label(self, prefix: str) -> str:
        """Return a unique label name with *prefix*."""
        self._label_counter += 1
        return f"{prefix}_{self._label_counter}"

    # ------------------------------------------------------------------
    # Common opcodes.
    # ------------------------------------------------------------------
    def op(self, opcode: Opcode, dest: Reg, *srcs: Union[Operand, int, float]) -> int:
        """Emit any compute opcode, coercing bare numbers to immediates."""
        coerced = tuple(Imm(s) if isinstance(s, (int, float)) else s for s in srcs)
        return self.emit(alu(opcode, dest, *coerced))

    def li(self, dest: Reg, value: Number) -> int:
        return self.emit(li(dest, value))

    def mov(self, dest: Reg, src: Operand) -> int:
        return self.op(Opcode.MOV, dest, src)

    def add(self, dest: Reg, a, b) -> int:
        return self.op(Opcode.ADD, dest, a, b)

    def sub(self, dest: Reg, a, b) -> int:
        return self.op(Opcode.SUB, dest, a, b)

    def mul(self, dest: Reg, a, b) -> int:
        return self.op(Opcode.MUL, dest, a, b)

    def fadd(self, dest: Reg, a, b) -> int:
        return self.op(Opcode.FADD, dest, a, b)

    def fsub(self, dest: Reg, a, b) -> int:
        return self.op(Opcode.FSUB, dest, a, b)

    def fmul(self, dest: Reg, a, b) -> int:
        return self.op(Opcode.FMUL, dest, a, b)

    def fma(self, dest: Reg, a, b, c) -> int:
        return self.op(Opcode.FMA, dest, a, b, c)

    def ld(self, dest: Reg, base: Operand, offset: Union[int, Imm] = 0,
           comment: str = "") -> int:
        return self.emit(load(dest, base, offset, comment=comment))

    def st(self, value: Union[Operand, int, float], base: Operand,
           offset: Union[int, Imm] = 0, comment: str = "") -> int:
        if isinstance(value, (int, float)):
            value = Imm(value)
        return self.emit(store(value, base, offset, comment=comment))

    def jmp(self, target: str) -> int:
        return self.emit(jump(target))

    def br(self, opcode: Opcode, a, b, target: str) -> int:
        a = Imm(a) if isinstance(a, (int, float)) else a
        b = Imm(b) if isinstance(b, (int, float)) else b
        return self.emit(branch(opcode, a, b, target))

    def halt(self) -> int:
        return self.emit(halt())

    def call(self, target: str, link: Reg) -> int:
        """Call the subroutine at *target*, saving the return pc in *link*."""
        return self.emit(
            Instruction(Opcode.JAL, dest=link, srcs=(), target=target)
        )

    def ret(self, link: Reg) -> int:
        """Return through *link* (a JR to the saved pc)."""
        return self.emit(Instruction(Opcode.JR, srcs=(link,)))

    @contextlib.contextmanager
    def subroutine(self, name: str, link: Reg) -> Iterator[None]:
        """Define a subroutine out of the fall-through path.

        Emits a jump over the body, binds *name* to its entry, and
        appends the JR through *link* on exit; call it with
        :meth:`call`.
        """
        skip = self.fresh_label("over")
        self.jmp(skip)
        self.program.add_label(name)
        yield
        self.ret(link)
        self.program.add_label(skip)

    # ------------------------------------------------------------------
    # Structured control flow.
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def loop(self, counter: Union[str, Reg], start: Union[int, Reg],
             stop: Union[int, Reg], step: int = 1) -> Iterator[Reg]:
        """Counted loop: ``for counter in range(start, stop, step)``.

        *stop* may be a register holding the bound.  The loop body runs
        zero times when the range is empty.
        """
        reg = self.reg(counter) if isinstance(counter, str) else counter
        if isinstance(start, Reg):
            self.mov(reg, start)
        else:
            self.li(reg, start)
        top = self.label(self.fresh_label("loop"))
        end = self.fresh_label("endloop")
        bound = stop if isinstance(stop, Reg) else Imm(stop)
        if step > 0:
            self.br(Opcode.BGE, reg, bound, end)
        else:
            self.br(Opcode.BGE, bound, reg, end)
        yield reg
        self.add(reg, reg, step)
        self.jmp(top)
        self.program.add_label(end)

    @contextlib.contextmanager
    def when(self, condition: Opcode, a, b) -> Iterator[None]:
        """Execute the body only when ``condition(a, b)`` holds."""
        try:
            inverse = _INVERSE_BRANCH[condition]
        except KeyError:
            raise ValidationError(f"{condition.value} is not a branch condition") from None
        skip = self.fresh_label("skip")
        self.br(inverse, a, b, skip)
        yield
        self.program.add_label(skip)

    # ------------------------------------------------------------------
    # Finalisation.
    # ------------------------------------------------------------------
    def build(self, validate: bool = True) -> Program:
        """Finish the program (appending HALT if missing) and validate it."""
        if not self.program.instructions or (
            self.program.instructions[-1].opcode is not Opcode.HALT
        ):
            self.halt()
        if validate:
            from .validate import validate_program

            validate_program(self.program)
        return self.program
