"""Static validation of programs.

``validate_program`` enforces the structural rules of the ISA and of
amnesic binaries before they reach the simulator:

* every branch/jump/RCMP target resolves to a label inside the program;
* slice regions contain only recomputing (compute) instructions and end
  with ``RTN`` — the paper's construction rule that "loads and stores
  cannot be present as intermediate nodes in RSlice(v)" (section 3.1.1),
  and more generally that the amnesic microarchitecture "excludes memory
  or control flow instructions" (section 3.4);
* scratch registers and Hist operands appear only inside slice regions;
* every ``RCMP``/``REC`` references a registered slice.
"""

from __future__ import annotations

from ..errors import ValidationError
from .opcodes import Opcode
from .operands import HistRef, SReg
from .program import Program


def validate_program(program: Program) -> None:
    """Raise :class:`ValidationError` on the first structural violation."""
    _validate_labels(program)
    _validate_slices(program)
    _validate_operand_scoping(program)
    _validate_amnesic_references(program)


def _validate_labels(program: Program) -> None:
    size = len(program.instructions)
    for label, pc in program.labels.items():
        if not 0 <= pc <= size:
            raise ValidationError(f"label {label} points outside program: {pc}")
    for pc, instruction in enumerate(program.instructions):
        if instruction.target is not None and instruction.target not in program.labels:
            raise ValidationError(
                f"pc {pc}: undefined target label {instruction.target!r}"
            )


def _validate_slices(program: Program) -> None:
    for region in program.slices.values():
        if not 0 <= region.start < region.end <= len(program.instructions):
            raise ValidationError(
                f"slice {region.slice_id} has invalid extent "
                f"[{region.start}, {region.end})"
            )
        if program.pc_of(region.entry_label) != region.start:
            raise ValidationError(
                f"slice {region.slice_id} entry label does not match its start"
            )
        last = program.instructions[region.end - 1]
        if last.opcode is not Opcode.RTN:
            raise ValidationError(f"slice {region.slice_id} does not end with RTN")
        for pc in range(region.start, region.end - 1):
            instruction = program.instructions[pc]
            if not instruction.opcode.is_compute:
                raise ValidationError(
                    f"slice {region.slice_id} contains non-compute instruction "
                    f"at pc {pc}: {instruction}"
                )
            if not isinstance(instruction.dest, SReg):
                raise ValidationError(
                    f"slice {region.slice_id} instruction at pc {pc} must write "
                    f"a scratch register"
                )
    # Regions must not overlap.
    regions = sorted(program.slices.values(), key=lambda r: r.start)
    for a, b in zip(regions, regions[1:]):
        if a.end > b.start:
            raise ValidationError(
                f"slices {a.slice_id} and {b.slice_id} overlap"
            )


def _validate_operand_scoping(program: Program) -> None:
    for pc, instruction in enumerate(program.instructions):
        inside_slice = program.slice_containing(pc) is not None
        uses_scratch = isinstance(instruction.dest, SReg) or any(
            isinstance(src, (SReg, HistRef)) for src in instruction.srcs
        )
        if uses_scratch and not inside_slice:
            raise ValidationError(
                f"pc {pc}: scratch/Hist operands outside a slice region: {instruction}"
            )
        if instruction.leaf_id is not None and not inside_slice:
            if instruction.opcode is not Opcode.REC:
                raise ValidationError(
                    f"pc {pc}: leaf annotation outside a slice region: {instruction}"
                )


def _validate_amnesic_references(program: Program) -> None:
    for pc, instruction in enumerate(program.instructions):
        if instruction.opcode in (Opcode.RCMP, Opcode.REC, Opcode.RTN):
            if instruction.slice_id not in program.slices:
                raise ValidationError(
                    f"pc {pc}: {instruction.opcode.value} references unknown "
                    f"slice {instruction.slice_id}"
                )
        if instruction.opcode is Opcode.RCMP:
            region = program.slices[instruction.slice_id]
            if program.pc_of(instruction.target) != region.start:
                raise ValidationError(
                    f"pc {pc}: RCMP target does not match slice "
                    f"{instruction.slice_id} entry"
                )
            if region.load_pc != pc:
                raise ValidationError(
                    f"pc {pc}: slice {instruction.slice_id} is owned by "
                    f"pc {region.load_pc}, not this RCMP"
                )
