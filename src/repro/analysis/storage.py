"""Storage-complexity bounds (paper section 3.4).

The paper derives loose upper bounds for each amnesic structure from the
slices baked into the binary:

* ``SFile``: at most ``max#inst_per_RSlice x max#rename`` entries, with
  ``max#rename = max#src + max#dest`` (3 for a 2-source RISC; our FMA
  raises it to 4);
* ``Hist``: at most ``#RSlice x max#leaf_per_RSlice`` entries, each
  holding at most ``max#src`` values;
* ``IBuff``: at most ``max#inst_per_RSlice`` entries.

:func:`storage_bounds` evaluates those formulas over a compiled binary;
tests and the sizing benchmark check that observed high-water marks
respect them (and by how much the bounds over-provision, the paper's
section 5.4 observation).
"""

from __future__ import annotations

import dataclasses

from ..compiler.annotate import AmnesicBinary
from ..isa.opcodes import MAX_RENAME_REQUESTS


@dataclasses.dataclass(frozen=True)
class StorageBounds:
    """Paper section 3.4 upper bounds for one amnesic binary."""

    slice_count: int
    max_instructions_per_slice: int
    max_hist_leaves_per_slice: int
    #: SFile bound: max#inst_per_RSlice x max#rename.
    sfile_entries: int
    #: Hist bound: #RSlice x max#leaf_per_RSlice.
    hist_entries: int
    #: IBuff bound: max#inst_per_RSlice.
    ibuff_entries: int

    def summarise(self) -> str:
        return (
            f"{self.slice_count} slices, longest {self.max_instructions_per_slice} "
            f"instructions -> bounds: SFile<={self.sfile_entries}, "
            f"Hist<={self.hist_entries}, IBuff<={self.ibuff_entries}"
        )


def storage_bounds(binary: AmnesicBinary) -> StorageBounds:
    """Evaluate the section 3.4 formulas over *binary*."""
    infos = list(binary.slices.values())
    max_instructions = max((info.length for info in infos), default=0)
    max_hist_leaves = max((len(info.hist_leaf_ids) for info in infos), default=0)
    return StorageBounds(
        slice_count=len(infos),
        max_instructions_per_slice=max_instructions,
        max_hist_leaves_per_slice=max_hist_leaves,
        sfile_entries=max_instructions * MAX_RENAME_REQUESTS,
        hist_entries=len(infos) * max_hist_leaves,
        ibuff_entries=max_instructions,
    )


@dataclasses.dataclass(frozen=True)
class StorageUtilisation:
    """Observed demand against the paper's bounds."""

    bounds: StorageBounds
    sfile_high_water: int
    hist_high_water: int
    ibuff_high_water: int

    @property
    def within_bounds(self) -> bool:
        # SFile/IBuff bounds are per-traversal; Hist is binary-wide.
        return (
            self.sfile_high_water <= max(self.bounds.sfile_entries, 1)
            and self.hist_high_water <= max(self.bounds.hist_entries, 1)
        )


def observed_utilisation(binary: AmnesicBinary, amnesic_cpu) -> StorageUtilisation:
    """Pair the bounds with an executed CPU's high-water marks."""
    return StorageUtilisation(
        bounds=storage_bounds(binary),
        sfile_high_water=amnesic_cpu.sfile.stats.high_water,
        hist_high_water=amnesic_cpu.hist.stats.high_water,
        ibuff_high_water=amnesic_cpu.ibuff.stats.high_water,
    )
