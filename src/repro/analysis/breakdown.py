"""Dynamic instruction mix and energy breakdown (paper Table 4).

For each benchmark, under the Compiler policy (which "incurs the maximum
possible number of recomputations"):

* % increase in dynamic instruction count over classic;
* % decrease in dynamic load count;
* classic energy breakdown: Load / Store / Non-mem (%);
* amnesic energy breakdown: Load / Store / Non-mem / Hist Read (%).

Group mapping from our finer-grained accounting: ``Non-mem`` absorbs the
amnesic control overheads (RCMP/REC/RTN and probes) since the paper
models them after branches/stores-to-L1/jumps executed by the core, and
``Store`` keeps the write-back traffic it caused.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from ..core.execution import PolicyComparison
from ..energy.account import (
    GROUP_AMNESIC,
    GROUP_HIST,
    GROUP_LOAD,
    GROUP_NONMEM,
    GROUP_STORE,
    GROUP_WRITEBACK,
)
from .tables import render_table


@dataclasses.dataclass
class BreakdownRow:
    """One benchmark's Table 4 row."""

    benchmark: str
    instruction_increase_percent: float
    load_decrease_percent: float
    classic_load: float
    classic_store: float
    classic_nonmem: float
    amnesic_load: float
    amnesic_store: float
    amnesic_nonmem: float
    amnesic_hist: float


def _shares(breakdown: Dict[str, float]) -> Dict[str, float]:
    total = sum(breakdown.values())
    if total <= 0:
        return {key: 0.0 for key in breakdown}
    return {key: 100.0 * value / total for key, value in breakdown.items()}


def breakdown_row(benchmark: str, comparison: PolicyComparison) -> BreakdownRow:
    """Compute the Table 4 row from one Compiler-policy comparison."""
    classic_stats = comparison.classic.stats
    amnesic_stats = comparison.amnesic.stats

    instruction_increase = 100.0 * (
        amnesic_stats.dynamic_instructions - classic_stats.dynamic_instructions
    ) / max(classic_stats.dynamic_instructions, 1)
    load_decrease = 100.0 * (
        classic_stats.loads_performed - amnesic_stats.loads_performed
    ) / max(classic_stats.loads_performed, 1)

    classic = _shares(comparison.classic.account.breakdown())
    amnesic = _shares(comparison.amnesic.account.breakdown())

    return BreakdownRow(
        benchmark=benchmark,
        instruction_increase_percent=instruction_increase,
        load_decrease_percent=load_decrease,
        classic_load=classic[GROUP_LOAD],
        classic_store=classic[GROUP_STORE] + classic[GROUP_WRITEBACK],
        classic_nonmem=classic[GROUP_NONMEM] + classic[GROUP_AMNESIC],
        amnesic_load=amnesic[GROUP_LOAD],
        amnesic_store=amnesic[GROUP_STORE] + amnesic[GROUP_WRITEBACK],
        amnesic_nonmem=amnesic[GROUP_NONMEM] + amnesic[GROUP_AMNESIC],
        amnesic_hist=amnesic[GROUP_HIST],
    )


def breakdown_table(
    results: Dict[str, Dict[str, PolicyComparison]], policy: str = "Compiler"
) -> List[BreakdownRow]:
    """Table 4 rows for every benchmark in *results*."""
    return [
        breakdown_row(benchmark, policies[policy])
        for benchmark, policies in results.items()
    ]


def render_breakdown(rows: List[BreakdownRow], title: str = "") -> str:
    headers = [
        "bench", "+instr%", "-loads%",
        "cl.Load%", "cl.Store%", "cl.Nonmem%",
        "am.Load%", "am.Store%", "am.Nonmem%", "am.Hist%",
    ]
    table_rows = [
        [
            row.benchmark,
            row.instruction_increase_percent,
            row.load_decrease_percent,
            row.classic_load,
            row.classic_store,
            row.classic_nonmem,
            row.amnesic_load,
            row.amnesic_store,
            row.amnesic_nonmem,
            row.amnesic_hist,
        ]
        for row in rows
    ]
    return render_table(headers, table_rows, title=title)
