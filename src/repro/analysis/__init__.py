"""Evaluation analyses: gains, breakdowns, profiles, histograms, break-even."""

from .breakdown import BreakdownRow, breakdown_row, breakdown_table, render_breakdown
from .breakeven import (
    BreakevenResult,
    default_r,
    edp_gain_at_factor,
    find_breakeven,
)
from .gains import (
    METRIC_EDP,
    METRIC_ENERGY,
    METRIC_TIME,
    GainMatrix,
    matrix_from_results,
)
from .histograms import (
    LocalityHistogram,
    NonRecomputableShare,
    SliceLengthHistogram,
    locality_histogram,
    nonrecomputable_share,
    render_length_histogram,
    render_locality_histogram,
    render_nc_table,
    slice_length_histogram,
)
from .storage import (
    StorageBounds,
    StorageUtilisation,
    observed_utilisation,
    storage_bounds,
)
from .sweeps import (
    SweepPoint,
    cache_capacity_sweep,
    memory_energy_sweep,
    scaled_cache_config,
    scaled_memory_config,
    sweep_table,
)
from .memory_profile import (
    MemoryProfileRow,
    memory_profile_table,
    render_memory_profile,
    swapped_load_profile,
)
from .tables import render_histogram, render_table

__all__ = [
    "BreakdownRow",
    "BreakevenResult",
    "GainMatrix",
    "LocalityHistogram",
    "METRIC_EDP",
    "METRIC_ENERGY",
    "METRIC_TIME",
    "MemoryProfileRow",
    "NonRecomputableShare",
    "SliceLengthHistogram",
    "StorageBounds",
    "StorageUtilisation",
    "SweepPoint",
    "observed_utilisation",
    "storage_bounds",
    "cache_capacity_sweep",
    "memory_energy_sweep",
    "scaled_cache_config",
    "scaled_memory_config",
    "sweep_table",
    "breakdown_row",
    "breakdown_table",
    "default_r",
    "edp_gain_at_factor",
    "find_breakeven",
    "locality_histogram",
    "matrix_from_results",
    "memory_profile_table",
    "nonrecomputable_share",
    "render_breakdown",
    "render_histogram",
    "render_length_histogram",
    "render_locality_histogram",
    "render_memory_profile",
    "render_nc_table",
    "render_table",
    "slice_length_histogram",
    "swapped_load_profile",
]
