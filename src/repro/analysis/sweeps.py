"""Design-space sweeps: technology and cache-capacity sensitivity.

Complements the break-even bisection (:mod:`repro.analysis.breakeven`)
with the two other axes the paper's motivation (section 1, Table 1) and
future-work discussion imply:

* :func:`memory_energy_sweep` — scale every memory level's energy
  relative to compute, replaying the Table 1 trend (communication
  getting relatively dearer with technology scaling);
* :func:`cache_capacity_sweep` — scale the cache geometry, moving the
  workload's residence profile across L1/L2/MEM and with it the
  recomputation margin.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List

from ..compiler.amnesic_pass import PassOptions, compile_amnesic
from ..core.execution import run_amnesic, run_classic
from ..energy.model import EnergyModel
from ..isa.program import Program
from ..machine.config import CacheGeometry, LevelParams, MachineConfig


@dataclasses.dataclass
class SweepPoint:
    """One configuration of a sweep and its measured gain."""

    parameter: float
    edp_gain_percent: float
    energy_gain_percent: float
    time_gain_percent: float


def _measure(program: Program, model: EnergyModel, policy: str,
             options: PassOptions) -> SweepPoint:
    compilation = compile_amnesic(program, model, options=options)
    classic = run_classic(program, model)
    amnesic = run_amnesic(compilation, policy, model)

    def gain(baseline: float, value: float) -> float:
        return 100.0 * (baseline - value) / baseline if baseline else 0.0

    return SweepPoint(
        parameter=0.0,  # filled by the caller
        edp_gain_percent=gain(classic.edp, amnesic.edp),
        energy_gain_percent=gain(classic.energy_nj, amnesic.energy_nj),
        time_gain_percent=gain(classic.time_ns, amnesic.time_ns),
    )


def scaled_memory_config(config: MachineConfig, factor: float) -> MachineConfig:
    """Scale every memory level's (read/write) energy by *factor*."""

    def scale(params: LevelParams) -> LevelParams:
        return LevelParams(
            read_energy_nj=params.read_energy_nj * factor,
            write_energy_nj=params.write_energy_nj * factor,
            latency_ns=params.latency_ns,
        )

    return dataclasses.replace(
        config,
        l1_params=scale(config.l1_params),
        l2_params=scale(config.l2_params),
        mem_params=scale(config.mem_params),
    )


def memory_energy_sweep(
    program: Program,
    base_model: EnergyModel,
    factors: Iterable[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
    policy: str = "C-Oracle",
    options: PassOptions = PassOptions(),
) -> List[SweepPoint]:
    """Gains as communication energy scales (Table 1's trend axis)."""
    points = []
    for factor in factors:
        model = EnergyModel(
            epi=base_model.epi,
            config=scaled_memory_config(base_model.config, factor),
        )
        point = _measure(program, model, policy, options)
        point.parameter = factor
        points.append(point)
    return points


def scaled_cache_config(config: MachineConfig, factor: float) -> MachineConfig:
    """Scale both caches' line counts by *factor* (min 1 set)."""

    def scale(geometry: CacheGeometry) -> CacheGeometry:
        lines = max(
            geometry.associativity,
            int(geometry.total_lines * factor)
            // geometry.associativity
            * geometry.associativity,
        )
        return CacheGeometry(
            total_lines=lines,
            associativity=geometry.associativity,
            line_words=geometry.line_words,
        )

    return dataclasses.replace(
        config,
        l1_geometry=scale(config.l1_geometry),
        l2_geometry=scale(config.l2_geometry),
    )


def cache_capacity_sweep(
    program: Program,
    base_model: EnergyModel,
    factors: Iterable[float] = (0.5, 1.0, 2.0, 4.0),
    policy: str = "FLC",
    options: PassOptions = PassOptions(),
) -> List[SweepPoint]:
    """Gains as cache capacity scales.

    Bigger caches pull the swapped loads closer (less to win), smaller
    caches push them out (more to win) — the residence knob behind the
    paper's Table 5.
    """
    points = []
    for factor in factors:
        model = EnergyModel(
            epi=base_model.epi,
            config=scaled_cache_config(base_model.config, factor),
        )
        point = _measure(program, model, policy, options)
        point.parameter = factor
        points.append(point)
    return points


def sweep_table(points: List[SweepPoint], parameter_name: str) -> Dict[str, list]:
    """Column-oriented view of a sweep for table rendering."""
    return {
        parameter_name: [p.parameter for p in points],
        "edp_gain_percent": [p.edp_gain_percent for p in points],
        "energy_gain_percent": [p.energy_gain_percent for p in points],
        "time_gain_percent": [p.time_gain_percent for p in points],
    }
