"""Design-space sweeps: technology and cache-capacity sensitivity.

Complements the break-even bisection (:mod:`repro.analysis.breakeven`)
with the two other axes the paper's motivation (section 1, Table 1) and
future-work discussion imply:

* :func:`memory_energy_sweep` — scale every memory level's energy
  relative to compute, replaying the Table 1 trend (communication
  getting relatively dearer with technology scaling);
* :func:`cache_capacity_sweep` — scale the cache geometry, moving the
  workload's residence profile across L1/L2/MEM and with it the
  recomputation margin.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List

from ..compiler.amnesic_pass import PassOptions, compile_amnesic
from ..core.execution import PolicyComparison, run_amnesic, run_classic
from ..energy.model import EnergyModel
from ..isa.program import Program
from ..machine.config import CacheGeometry, LevelParams, MachineConfig
from ..machine.cpu import DEFAULT_MAX_INSTRUCTIONS


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One configuration of a sweep and its measured gain."""

    parameter: float
    edp_gain_percent: float
    energy_gain_percent: float
    time_gain_percent: float


def _measure(
    program: Program,
    model: EnergyModel,
    policy: str,
    options: PassOptions,
    parameter: float,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
) -> SweepPoint:
    """One sweep configuration, measured as a full policy comparison."""
    compilation = compile_amnesic(program, model, options=options)
    classic = run_classic(program, model, max_instructions=max_instructions)
    amnesic = run_amnesic(
        compilation, policy, model, max_instructions=max_instructions
    )
    comparison = PolicyComparison(
        policy=policy, classic=classic, amnesic=amnesic, compilation=compilation
    )
    return SweepPoint(
        parameter=parameter,
        edp_gain_percent=comparison.edp_gain_percent,
        energy_gain_percent=comparison.energy_gain_percent,
        time_gain_percent=comparison.time_gain_percent,
    )


def scaled_memory_config(config: MachineConfig, factor: float) -> MachineConfig:
    """Scale every memory level's (read/write) energy by *factor*."""

    def scale(params: LevelParams) -> LevelParams:
        return LevelParams(
            read_energy_nj=params.read_energy_nj * factor,
            write_energy_nj=params.write_energy_nj * factor,
            latency_ns=params.latency_ns,
        )

    return dataclasses.replace(
        config,
        l1_params=scale(config.l1_params),
        l2_params=scale(config.l2_params),
        mem_params=scale(config.mem_params),
    )


def memory_energy_sweep(
    program: Program,
    base_model: EnergyModel,
    factors: Iterable[float] = (0.25, 0.5, 1.0, 2.0, 4.0),
    policy: str = "C-Oracle",
    options: PassOptions = PassOptions(),
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
) -> List[SweepPoint]:
    """Gains as communication energy scales (Table 1's trend axis)."""
    points = []
    for factor in factors:
        model = EnergyModel(
            epi=base_model.epi,
            config=scaled_memory_config(base_model.config, factor),
        )
        points.append(
            _measure(program, model, policy, options, parameter=factor,
                     max_instructions=max_instructions)
        )
    return points


def scaled_cache_config(config: MachineConfig, factor: float) -> MachineConfig:
    """Scale both caches' line counts by *factor* (min 1 set)."""

    def scale(geometry: CacheGeometry) -> CacheGeometry:
        lines = max(
            geometry.associativity,
            int(geometry.total_lines * factor)
            // geometry.associativity
            * geometry.associativity,
        )
        return CacheGeometry(
            total_lines=lines,
            associativity=geometry.associativity,
            line_words=geometry.line_words,
        )

    return dataclasses.replace(
        config,
        l1_geometry=scale(config.l1_geometry),
        l2_geometry=scale(config.l2_geometry),
    )


def cache_capacity_sweep(
    program: Program,
    base_model: EnergyModel,
    factors: Iterable[float] = (0.5, 1.0, 2.0, 4.0),
    policy: str = "FLC",
    options: PassOptions = PassOptions(),
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
) -> List[SweepPoint]:
    """Gains as cache capacity scales.

    Bigger caches pull the swapped loads closer (less to win), smaller
    caches push them out (more to win) — the residence knob behind the
    paper's Table 5.
    """
    points = []
    for factor in factors:
        model = EnergyModel(
            epi=base_model.epi,
            config=scaled_cache_config(base_model.config, factor),
        )
        points.append(
            _measure(program, model, policy, options, parameter=factor,
                     max_instructions=max_instructions)
        )
    return points


def sweep_table(points: List[SweepPoint], parameter_name: str) -> Dict[str, list]:
    """Column-oriented view of a sweep for table rendering."""
    return {
        parameter_name: [p.parameter for p in points],
        "edp_gain_percent": [p.edp_gain_percent for p in points],
        "energy_gain_percent": [p.energy_gain_percent for p in points],
        "time_gain_percent": [p.time_gain_percent for p in points],
    }
