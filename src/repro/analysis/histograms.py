"""RSlice and locality characterisations (paper Figures 6, 7, 8).

* Figure 6 — histogram of instruction count per recomputed RSlice under
  the Compiler policy (which recomputes every slice in the binary, so
  the histogram covers the whole compiler-identified set);
* Figure 7 — % of RSlices with non-recomputable leaf inputs ("w/ nc");
* Figure 8 — value locality of the loads swapped by the Compiler
  policy, measured on the classic profiling run.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

from ..compiler.amnesic_pass import CompilationResult
from ..core.execution import PolicyComparison
from .tables import render_histogram, render_table


# ----------------------------------------------------------------------
# Figure 6: slice-length histograms.
# ----------------------------------------------------------------------
@dataclasses.dataclass
class SliceLengthHistogram:
    """Distribution of instruction count per RSlice for one benchmark."""

    benchmark: str
    lengths: List[int]  # one entry per RSlice in the binary

    def fractions(self, bin_edges: Sequence[int]) -> List[float]:
        """Fraction of RSlices per [edge_i, edge_{i+1}) bin."""
        if not self.lengths:
            return [0.0] * (len(bin_edges) - 1)
        counts = [0] * (len(bin_edges) - 1)
        for length in self.lengths:
            for index in range(len(bin_edges) - 1):
                if bin_edges[index] <= length < bin_edges[index + 1]:
                    counts[index] += 1
                    break
        total = len(self.lengths)
        return [count / total for count in counts]

    def share_below(self, limit: int) -> float:
        """Fraction of slices shorter than *limit* instructions."""
        if not self.lengths:
            return 0.0
        return sum(1 for length in self.lengths if length < limit) / len(self.lengths)

    @property
    def max_length(self) -> int:
        return max(self.lengths, default=0)


def slice_length_histogram(
    benchmark: str, compilation: CompilationResult
) -> SliceLengthHistogram:
    """Figure 6 data for one compiled benchmark."""
    return SliceLengthHistogram(
        benchmark=benchmark,
        lengths=[rslice.length for rslice in compilation.rslices],
    )


def render_length_histogram(
    histogram: SliceLengthHistogram, bin_width: int = 5, title: str = ""
) -> str:
    top = max(histogram.max_length + 1, bin_width)
    edges = list(range(0, top + bin_width, bin_width))
    labels = [f"{edges[i]}-{edges[i + 1] - 1}" for i in range(len(edges) - 1)]
    return render_histogram(
        labels, histogram.fractions(edges),
        title=title or f"({histogram.benchmark}) % RSlices by instruction count",
    )


# ----------------------------------------------------------------------
# Figure 7: non-recomputable leaf inputs.
# ----------------------------------------------------------------------
@dataclasses.dataclass
class NonRecomputableShare:
    """w/ nc vs w/o nc split of one benchmark's RSlices."""

    benchmark: str
    with_nc: int
    without_nc: int

    @property
    def total(self) -> int:
        return self.with_nc + self.without_nc

    @property
    def with_nc_percent(self) -> float:
        return 100.0 * self.with_nc / self.total if self.total else 0.0


def nonrecomputable_share(
    benchmark: str, compilation: CompilationResult
) -> NonRecomputableShare:
    """Figure 7 data for one compiled benchmark."""
    with_nc = sum(
        1 for rslice in compilation.rslices if rslice.has_nonrecomputable_inputs
    )
    return NonRecomputableShare(
        benchmark=benchmark,
        with_nc=with_nc,
        without_nc=len(compilation.rslices) - with_nc,
    )


def render_nc_table(shares: List[NonRecomputableShare], title: str = "") -> str:
    headers = ["bench", "w/ nc", "w/o nc", "w/ nc %"]
    rows = [
        [share.benchmark, share.with_nc, share.without_nc, share.with_nc_percent]
        for share in shares
    ]
    return render_table(headers, rows, title=title)


# ----------------------------------------------------------------------
# Figure 8: value locality of swapped loads.
# ----------------------------------------------------------------------
@dataclasses.dataclass
class LocalityHistogram:
    """% of (dynamic) swapped loads per value-locality bin."""

    benchmark: str
    fractions: List[float]  # ten bins: [0-10%), ..., [90-100%]

    def weighted_mean_percent(self) -> float:
        centers = [5.0 + 10.0 * index for index in range(len(self.fractions))]
        return sum(c * f for c, f in zip(centers, self.fractions))


def locality_histogram(
    benchmark: str, comparison: PolicyComparison, bins: int = 10
) -> LocalityHistogram:
    """Figure 8 data: locality of the loads the Compiler policy swapped."""
    compilation = comparison.compilation
    tracker = compilation.profile.locality
    swapped_pcs = [rslice.load_pc for rslice in compilation.rslices]
    return LocalityHistogram(
        benchmark=benchmark,
        fractions=tracker.weighted_histogram(swapped_pcs, bins=bins),
    )


def render_locality_histogram(histogram: LocalityHistogram, title: str = "") -> str:
    labels = [f"{10 * i}-{10 * (i + 1)}%" for i in range(len(histogram.fractions))]
    return render_histogram(
        labels, histogram.fractions,
        title=title or f"({histogram.benchmark}) % loads by value locality",
    )
