"""Plain-text table rendering for the evaluation harness.

The harness prints every reproduced table and figure as an aligned text
table (the closest analog of the paper's figures that a terminal can
carry); benchmarks `tee` this output into the experiment record.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


def format_cell(value: Cell, precision: int = 2) -> str:
    """Render one cell: floats get fixed *precision*, the rest ``str``."""
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: str = "",
    precision: int = 2,
) -> str:
    """Render an aligned text table with a separator under the header."""
    rendered_rows: List[List[str]] = [
        [format_cell(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def render_histogram(
    bins: Sequence[str], fractions: Sequence[float], width: int = 40,
    title: str = "",
) -> str:
    """Render a horizontal ASCII bar histogram (fractions sum to ~1)."""
    label_width = max((len(b) for b in bins), default=0)
    parts = [title] if title else []
    for label, fraction in zip(bins, fractions):
        bar = "#" * max(0, round(fraction * width))
        parts.append(f"{label.rjust(label_width)} |{bar} {100 * fraction:.1f}%")
    return "\n".join(parts)
