"""Memory access profile of swapped loads (paper Table 5).

Table 5 reports, per benchmark and per policy, "the memory access
profile of load instructions **under classic execution**, which are
swapped for recomputation under Compiler, FLC, and LLC".  The set of
swapped loads differs per policy ("the set of RSlices recomputed by each
policy is different"): we take the slices that actually fired at least
once during the policy's run, and weight each by its static load's
classic-execution service histogram from the profiling run.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Dict, List, Sequence

from ..core.execution import PolicyComparison
from ..machine.config import LEVELS, Level
from .tables import render_table


@dataclasses.dataclass
class MemoryProfileRow:
    """Classic service-level split of one policy's swapped loads."""

    benchmark: str
    policy: str
    l1_percent: float
    l2_percent: float
    mem_percent: float
    swapped_slice_count: int

    def as_tuple(self):
        return (self.l1_percent, self.l2_percent, self.mem_percent)


def swapped_load_profile(
    benchmark: str, comparison: PolicyComparison
) -> MemoryProfileRow:
    """The Table 5 row for one (benchmark, policy) pair."""
    compilation = comparison.compilation
    amnesic_cpu = comparison.amnesic.cpu
    profiler = compilation.profile.loads

    counts: Counter = Counter()
    fired_slices = 0
    for rslice in compilation.rslices:
        # A slice participates if its RCMP recomputed at least once.
        slice_fired = _slice_fired(amnesic_cpu, rslice.slice_id)
        if not slice_fired:
            continue
        fired_slices += 1
        counts.update(profiler.per_load.get(rslice.load_pc, {}))

    total = sum(counts.values())
    if not total:
        return MemoryProfileRow(benchmark, comparison.policy, 0.0, 0.0, 0.0, 0)
    return MemoryProfileRow(
        benchmark=benchmark,
        policy=comparison.policy,
        l1_percent=100.0 * counts.get(Level.L1, 0) / total,
        l2_percent=100.0 * counts.get(Level.L2, 0) / total,
        mem_percent=100.0 * counts.get(Level.MEM, 0) / total,
        swapped_slice_count=fired_slices,
    )


def _slice_fired(amnesic_cpu, slice_id: int) -> bool:
    """Did this slice recompute at least once during the run?"""
    fired = getattr(amnesic_cpu, "fired_slice_ids", None)
    if fired is not None:
        return slice_id in fired
    # Conservative fallback: treat every embedded slice as swapped.
    return True


def memory_profile_table(
    results: Dict[str, Dict[str, PolicyComparison]],
    policies: Sequence[str] = ("Compiler", "FLC", "LLC"),
) -> List[MemoryProfileRow]:
    """All Table 5 rows for *results*."""
    rows = []
    for benchmark, by_policy in results.items():
        for policy in policies:
            rows.append(swapped_load_profile(benchmark, by_policy[policy]))
    return rows


def render_memory_profile(rows: List[MemoryProfileRow], title: str = "") -> str:
    headers = ["bench", "policy", "L1-hit%", "L2-hit%", "Mem-hit%", "#slices"]
    table_rows = [
        [
            row.benchmark,
            row.policy,
            row.l1_percent,
            row.l2_percent,
            row.mem_percent,
            row.swapped_slice_count,
        ]
        for row in rows
    ]
    return render_table(headers, table_rows, title=title)
