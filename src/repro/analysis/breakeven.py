"""Break-even analysis of the compute/communication ratio R (Table 6).

Paper section 5.5: the effectiveness of amnesic execution rests on
non-memory instructions being much cheaper than loads,
``R = EPI_nonmem / EPI_ld`` with ``R_default = 0.45/52.14 ~ 0.0086``.
Table 6 reports, per benchmark, by how much R must grow over its default
before amnesic execution (under C-Oracle) stops being beneficial.

We reproduce it by scaling every compute-category EPI by a factor,
recompiling (the compiler's cost model sees the scaled EPI, shrinking
its slice set as recomputation gets dearer), re-running C-Oracle, and
bisecting on the sign of the EDP gain.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from ..compiler.amnesic_pass import PassOptions, compile_amnesic
from ..core.execution import percent_gain, run_amnesic, run_classic
from ..energy.epi import EPITable
from ..energy.model import EnergyModel
from ..energy.tech import r_default
from ..isa.program import Program
from ..trace.recorder import ProfileResult


@dataclasses.dataclass
class BreakevenResult:
    """Break-even point of one benchmark."""

    benchmark: str
    breakeven_factor: float  # R_breakeven / R_default
    gain_at_default_percent: float
    converged: bool


def edp_gain_at_factor(
    program: Program,
    base_model: EnergyModel,
    factor: float,
    policy: str = "C-Oracle",
    options: PassOptions = PassOptions(),
    profile: Optional[ProfileResult] = None,
) -> float:
    """EDP gain (%) with all compute EPIs scaled by *factor*.

    *profile* lets callers reuse one profiling run across every probed
    factor: scaling compute EPIs changes costs, not the trace (the
    memory hierarchy is untouched), so the profile is factor-invariant.
    Only pass a profile gathered under the same machine configuration.
    """
    scaled = EnergyModel(
        epi=base_model.epi.scaled_nonmem(factor), config=base_model.config
    )
    compilation = compile_amnesic(program, scaled, profile=profile, options=options)
    classic = run_classic(program, scaled)
    amnesic = run_amnesic(compilation, policy, scaled)
    return percent_gain(classic.edp, amnesic.edp)


def find_breakeven(
    benchmark: str,
    program: Program,
    model: EnergyModel,
    policy: str = "C-Oracle",
    max_factor: float = 128.0,
    tolerance: float = 0.5,
    options: PassOptions = PassOptions(),
    gain_fn: Optional[Callable[[float], float]] = None,
    profile: Optional[ProfileResult] = None,
) -> BreakevenResult:
    """Bisect for the R multiplier where the EDP gain crosses zero.

    ``gain_fn`` may be injected for testing; by default it recompiles and
    re-runs the benchmark at each probed factor.  ``profile`` (an
    existing profiling run of *program* under *model*'s configuration)
    is forwarded to every probe so the trace is gathered only once.
    """
    if gain_fn is None:
        def gain_fn(factor: float) -> float:
            return edp_gain_at_factor(
                program, model, factor, policy, options, profile=profile
            )

    gain_at_default = gain_fn(1.0)
    if gain_at_default <= 0:
        return BreakevenResult(benchmark, 1.0, gain_at_default, converged=True)

    low, high = 1.0, 2.0
    high_gain = gain_fn(high)
    while high_gain > 0 and high < max_factor:
        low = high
        high = min(high * 2.0, max_factor)
        high_gain = gain_fn(high)
    if high_gain > 0:
        # Still profitable at the cap: report the cap as a lower bound.
        return BreakevenResult(benchmark, max_factor, gain_at_default, converged=False)

    while high - low > tolerance:
        mid = (low + high) / 2.0
        if gain_fn(mid) > 0:
            low = mid
        else:
            high = mid
    return BreakevenResult(
        benchmark, (low + high) / 2.0, gain_at_default, converged=True
    )


def default_r(model: EnergyModel) -> float:
    """The R_default of the supplied model (paper: ~0.0086)."""
    return r_default(model)
