"""EDP / energy / execution-time gain matrices (paper Figures 3-5).

A :class:`GainMatrix` holds, for each benchmark, the per-policy
:class:`~repro.core.execution.PolicyComparison` results, and projects
them onto the three y-axes the paper plots:

* Figure 3 — EDP gain (%), the headline result;
* Figure 4 — energy gain (%);
* Figure 5 — % reduction in execution time.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

from ..core.execution import PolicyComparison
from ..core.policies import POLICY_NAMES
from .tables import render_table

#: The three metrics, keyed by the figure that plots them.
METRIC_EDP = "edp"
METRIC_ENERGY = "energy"
METRIC_TIME = "time"

_METRIC_ACCESSOR = {
    METRIC_EDP: lambda comparison: comparison.edp_gain_percent,
    METRIC_ENERGY: lambda comparison: comparison.energy_gain_percent,
    METRIC_TIME: lambda comparison: comparison.time_gain_percent,
}


@dataclasses.dataclass
class GainMatrix:
    """Per-benchmark, per-policy gains over classic execution."""

    results: Dict[str, Dict[str, PolicyComparison]]
    policies: Sequence[str] = POLICY_NAMES

    def gain(self, benchmark: str, policy: str, metric: str = METRIC_EDP) -> float:
        """One gain value in percent (positive = amnesic wins)."""
        return _METRIC_ACCESSOR[metric](self.results[benchmark][policy])

    def row(self, benchmark: str, metric: str = METRIC_EDP) -> List[float]:
        return [self.gain(benchmark, policy, metric) for policy in self.policies]

    def benchmarks(self) -> List[str]:
        return list(self.results)

    # ------------------------------------------------------------------
    # Aggregates the paper quotes.
    # ------------------------------------------------------------------
    def mean_gain(self, policy: str = "Compiler", metric: str = METRIC_EDP) -> float:
        """Mean gain across benchmarks (paper: 24.92% over the 11)."""
        values = [self.gain(b, policy, metric) for b in self.results]
        return sum(values) / len(values) if values else 0.0

    def max_gain(self, policy: str = "Compiler", metric: str = METRIC_EDP) -> float:
        """Best-case gain (paper: up to 87%)."""
        return max((self.gain(b, policy, metric) for b in self.results), default=0.0)

    def degradations(self, policy: str = "Compiler", metric: str = METRIC_EDP):
        """Benchmarks this policy actually hurts (paper: sr under Compiler)."""
        return [
            benchmark
            for benchmark in self.results
            if self.gain(benchmark, policy, metric) < 0
        ]

    # ------------------------------------------------------------------
    # Rendering.
    # ------------------------------------------------------------------
    def render(self, metric: str = METRIC_EDP, title: str = "") -> str:
        headers = ["bench"] + list(self.policies)
        rows = [
            [benchmark] + self.row(benchmark, metric)
            for benchmark in self.results
        ]
        return render_table(headers, rows, title=title)


def matrix_from_results(
    results: Dict[str, Dict[str, PolicyComparison]],
    policies: Sequence[str] = POLICY_NAMES,
) -> GainMatrix:
    """Wrap raw suite results into a :class:`GainMatrix`."""
    return GainMatrix(results=results, policies=policies)
