"""The hot-loop profiler: per-opcode wall-clock and energy attribution.

The interpreter dispatch loop in :meth:`repro.machine.cpu.CPU.run` is
where the whole suite's host wall clock goes; this module answers
*which opcode handlers* burn it, and how much modeled energy each
accounts for.  A :class:`HotLoopProfiler` is installed on the telemetry
session (``telemetry.profiler``); every CPU run started while it is
installed switches to an instrumented dispatch loop that records, at
each sample point:

* the dispatched opcode and the run label (``classic``/``amnesic``);
* the host wall-clock elapsed since the previous sample point;
* the retired-instruction delta (an amnesic ``RCMP`` retires its whole
  slice traversal, so deltas — not call counts — reconcile with
  :class:`~repro.machine.stats.RunStats`);
* the modeled-energy delta from the run's :class:`EnergyAccount`.

With ``sample_every=1`` (*exact* mode) every dispatch is a sample point
and attribution is per-instruction-precise.  With a larger stride
(*sampling* mode, the cheap default for ``repro profile``) the elapsed
wall/instructions/energy since the last sample are attributed to the
sampled opcode — statistically fair for the dominant handlers at a
fraction of the overhead.  Either way the deltas telescope, so the
profile's **totals are exact**: summed instructions equal the runs'
``RunStats.dynamic_instructions`` and summed energy equals the energy
accounts, which is the reconciliation ``repro profile`` prints.

When no profiler is installed the CPU uses its plain loop; the feature
costs nothing when off.
"""

from __future__ import annotations

import dataclasses
import time
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

#: Default sampling stride for ``repro profile`` (use 1 for exact mode).
DEFAULT_SAMPLE_EVERY = 16

#: Synthetic "opcode" rows for work outside the dispatch loop.
FINALIZE_KEY = "(finalize)"

#: Synthetic row for the partial final sampling window.  In sampling
#: mode the tail spans up to ``sample_every - 1`` dispatches of *mixed*
#: opcodes, so attributing it to whichever opcode happened to retire
#: last would skew per-opcode shares at large strides; it still
#: telescopes into the exact totals under this key.
TAIL_KEY = "(tail)"


@dataclasses.dataclass
class ProfileRow:
    """Accumulated attribution for one (run label, opcode) pair."""

    run: str
    opcode: str
    samples: int = 0
    instructions: int = 0
    wall_s: float = 0.0
    energy_nj: float = 0.0


@dataclasses.dataclass(frozen=True)
class ProfileTotals:
    """Grand totals across every row (exact regardless of stride)."""

    samples: int
    instructions: int
    wall_s: float
    energy_nj: float


class HotLoopProfiler:
    """Accumulates per-opcode attribution across any number of runs."""

    def __init__(self, sample_every: int = 1, clock=time.perf_counter):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        self.clock = clock
        self.runs = 0
        self._rows: Dict[Tuple[str, str], ProfileRow] = {}

    @property
    def exact(self) -> bool:
        return self.sample_every == 1

    def record(
        self,
        run: str,
        opcode: str,
        wall_s: float,
        instructions: int,
        energy_nj: float,
    ) -> None:
        """Attribute one sample interval to (run, opcode)."""
        key = (run, opcode)
        row = self._rows.get(key)
        if row is None:
            row = self._rows[key] = ProfileRow(run=run, opcode=opcode)
        row.samples += 1
        row.instructions += instructions
        row.wall_s += wall_s
        row.energy_nj += energy_nj

    def record_finalize(self, run: str, wall_s: float, energy_nj: float) -> None:
        """Attribute end-of-run work (deferred write-backs) explicitly."""
        if energy_nj or wall_s:
            self.record(run, FINALIZE_KEY, wall_s, 0, energy_nj)

    # ------------------------------------------------------------------
    # Views.
    # ------------------------------------------------------------------
    def rows(self) -> List[ProfileRow]:
        """Every accumulated row, hottest wall clock first."""
        return sorted(
            self._rows.values(),
            key=lambda row: (-row.wall_s, row.run, row.opcode),
        )

    def totals(self) -> ProfileTotals:
        rows = self._rows.values()
        return ProfileTotals(
            samples=sum(row.samples for row in rows),
            instructions=sum(row.instructions for row in rows),
            wall_s=sum(row.wall_s for row in rows),
            energy_nj=sum(row.energy_nj for row in rows),
        )

    def by_opcode(self) -> List[ProfileRow]:
        """Rows folded across run labels (one row per opcode)."""
        folded: Dict[str, ProfileRow] = {}
        for row in self._rows.values():
            into = folded.get(row.opcode)
            if into is None:
                into = folded[row.opcode] = ProfileRow(run="*", opcode=row.opcode)
            into.samples += row.samples
            into.instructions += row.instructions
            into.wall_s += row.wall_s
            into.energy_nj += row.energy_nj
        return sorted(
            folded.values(), key=lambda row: (-row.wall_s, row.opcode)
        )

    def to_json(self) -> Dict[str, object]:
        totals = self.totals()
        return {
            "mode": "exact" if self.exact else "sampling",
            "sample_every": self.sample_every,
            "runs": self.runs,
            "rows": [dataclasses.asdict(row) for row in self.rows()],
            "totals": dataclasses.asdict(totals),
        }


def reconcile(
    profiler: HotLoopProfiler,
    runstats_instructions: int,
    accounts_energy_nj: Optional[float] = None,
) -> Dict[str, object]:
    """Compare profiler totals against the runs' own bookkeeping.

    The profiler's instruction/energy deltas telescope, so any
    discrepancy against the published ``RunStats`` totals means an
    instrumentation bug — ``repro profile`` surfaces it rather than
    silently printing a table that doesn't add up.
    """
    totals = profiler.totals()
    result: Dict[str, object] = {
        "profiler_instructions": totals.instructions,
        "runstats_instructions": runstats_instructions,
        "instructions_delta": totals.instructions - runstats_instructions,
        "reconciled": totals.instructions == runstats_instructions,
    }
    if accounts_energy_nj is not None:
        delta = totals.energy_nj - accounts_energy_nj
        tolerance = 1e-6 * max(1.0, abs(accounts_energy_nj))
        result.update(
            profiler_energy_nj=totals.energy_nj,
            accounts_energy_nj=accounts_energy_nj,
            energy_delta_nj=delta,
            reconciled=bool(result["reconciled"]) and abs(delta) <= tolerance,
        )
    return result


def render_profile(
    profiler: HotLoopProfiler,
    top: int = 0,
    fold_runs: bool = False,
    reconciliation: Optional[Dict[str, object]] = None,
) -> str:
    """The ranked attribution table ``repro profile`` prints."""
    rows = profiler.by_opcode() if fold_runs else profiler.rows()
    if top:
        rows = rows[:top]
    totals = profiler.totals()
    wall = totals.wall_s or 1.0
    energy = totals.energy_nj or 1.0
    instructions = totals.instructions or 1
    mode = "exact" if profiler.exact else f"sampling 1/{profiler.sample_every}"
    lines = [
        f"hot-loop profile ({mode}, {profiler.runs} runs, "
        f"{totals.instructions} instructions, {totals.wall_s * 1e3:.1f}ms, "
        f"{totals.energy_nj:.1f}nJ)",
        f"  {'opcode':<10}{'run':<9}{'instrs':>10}{'instr%':>8}"
        f"{'wall ms':>10}{'wall%':>8}{'energy nJ':>12}{'energy%':>9}",
    ]
    for row in rows:
        lines.append(
            f"  {row.opcode:<10}{row.run:<9}{row.instructions:>10}"
            f"{100 * row.instructions / instructions:>7.1f}%"
            f"{row.wall_s * 1e3:>10.2f}"
            f"{100 * row.wall_s / wall:>7.1f}%"
            f"{row.energy_nj:>12.2f}"
            f"{100 * row.energy_nj / energy:>8.1f}%"
        )
    if reconciliation is not None:
        ok = "ok" if reconciliation.get("reconciled") else "MISMATCH"
        lines.append(
            f"  reconciliation vs RunStats: {ok} "
            f"(profiler {reconciliation['profiler_instructions']} instrs "
            f"vs runstats {reconciliation['runstats_instructions']}, "
            f"delta {reconciliation['instructions_delta']})"
        )
        if "accounts_energy_nj" in reconciliation:
            lines.append(
                f"  energy vs accounts: "
                f"{reconciliation['profiler_energy_nj']:.3f}nJ vs "
                f"{reconciliation['accounts_energy_nj']:.3f}nJ "
                f"(delta {reconciliation['energy_delta_nj']:.3g}nJ)"
            )
    return "\n".join(lines)


def phase_breakdown(profiler: HotLoopProfiler) -> Dict[str, Dict[str, float]]:
    """Wall/energy grouped by pipeline phase (run label) — the coarse cut."""
    phases: Dict[str, Dict[str, float]] = defaultdict(
        lambda: {"wall_s": 0.0, "energy_nj": 0.0, "instructions": 0}
    )
    for row in profiler.rows():
        phase = phases[row.run]
        phase["wall_s"] += row.wall_s
        phase["energy_nj"] += row.energy_nj
        phase["instructions"] += row.instructions
    return dict(phases)
