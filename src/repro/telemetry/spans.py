"""Span-based tracing for the profile -> compile -> execute pipeline.

A :class:`Span` is one timed region with a name and free-form
attributes; the :class:`SpanTracer` maintains the open-span stack (the
interpreters are single-threaded, so a plain stack is the whole story),
assigns parent links, and notifies an optional event sink on open and
close.  Completed spans can be reassembled into a tree of
:class:`SpanNode` for the summary renderer, with *self time* (duration
minus child durations) available for hot-spot ranking.
"""

from __future__ import annotations

import dataclasses
import time
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional


@dataclasses.dataclass
class Span:
    """One timed, attributed region of the pipeline."""

    span_id: int
    parent_id: Optional[int]
    name: str
    attrs: Dict[str, object] = dataclasses.field(default_factory=dict)
    start_s: float = 0.0
    end_s: Optional[float] = None
    status: str = "ok"

    @property
    def closed(self) -> bool:
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def set(self, **attrs) -> None:
        """Attach attributes discovered after the span opened."""
        self.attrs.update(attrs)


class _NullSpan:
    """Stand-in yielded when telemetry is disabled; absorbs ``set()``."""

    __slots__ = ()

    def set(self, **attrs) -> None:
        pass


NULL_SPAN = _NullSpan()


class _NullSpanContext:
    """Reusable no-op context manager (shared, so zero allocation)."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_SPAN_CONTEXT = _NullSpanContext()


class SpanTracer:
    """Tracks open spans and remembers completed ones in close order."""

    def __init__(self, sink=None, clock=time.perf_counter):
        self.sink = sink
        self.completed: List[Span] = []
        self._clock = clock
        self._stack: List[Span] = []
        self._next_id = 0

    @property
    def depth(self) -> int:
        return len(self._stack)

    def current(self) -> Optional[Span]:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def allocate_id(self) -> int:
        """Reserve one span id from this tracer's id space.

        The parallel engine remaps worker-process span ids through this
        when merging, so ids stay unique across the whole session and
        reconstructed trees never alias spans from different workers.
        """
        span_id = self._next_id
        self._next_id += 1
        return span_id

    @contextmanager
    def span(self, name: str, **attrs):
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(
            span_id=self._next_id,
            parent_id=parent,
            name=name,
            attrs=dict(attrs),
            start_s=self._clock(),
        )
        self._next_id += 1
        self._stack.append(span)
        if self.sink is not None:
            self.sink.emit(
                {
                    "type": "span_open",
                    "span": span.span_id,
                    "parent": span.parent_id,
                    "name": span.name,
                    "t": span.start_s,
                    "attrs": dict(span.attrs),
                }
            )
        try:
            yield span
            span.status = "ok"
        except BaseException:
            span.status = "error"
            raise
        finally:
            span.end_s = self._clock()
            self._stack.pop()
            self.completed.append(span)
            if self.sink is not None:
                self.sink.emit(
                    {
                        "type": "span_close",
                        "span": span.span_id,
                        "name": span.name,
                        "t": span.end_s,
                        "duration_s": span.duration_s,
                        "status": span.status,
                        "attrs": dict(span.attrs),
                    }
                )

    def tree(self) -> List["SpanNode"]:
        """Completed spans as a forest (roots in start order)."""
        return build_tree(self.completed)


@dataclasses.dataclass
class SpanNode:
    """A span plus its children, for tree rendering and hot-spot math."""

    span: Span
    children: List["SpanNode"] = dataclasses.field(default_factory=list)

    @property
    def name(self) -> str:
        return self.span.name

    @property
    def duration_s(self) -> float:
        return self.span.duration_s

    @property
    def self_time_s(self) -> float:
        """Duration not accounted for by child spans."""
        return max(
            0.0, self.span.duration_s - sum(c.span.duration_s for c in self.children)
        )

    def walk(self) -> Iterable["SpanNode"]:
        yield self
        for child in self.children:
            yield from child.walk()


def build_tree(spans: Iterable[Span]) -> List[SpanNode]:
    """Assemble spans into a forest using their parent links.

    Spans whose parent is absent (e.g. a trace truncated mid-run) are
    promoted to roots rather than dropped.
    """
    nodes: Dict[int, SpanNode] = {span.span_id: SpanNode(span) for span in spans}
    roots: List[SpanNode] = []
    for node in nodes.values():
        parent = (
            nodes.get(node.span.parent_id)
            if node.span.parent_id is not None
            else None
        )
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():
        node.children.sort(key=lambda child: child.span.start_s)
    roots.sort(key=lambda node: node.span.start_s)
    return roots
