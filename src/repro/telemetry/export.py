"""Chrome/Perfetto ``trace_event`` export for recorded JSONL traces.

A ``--trace-out`` file (optionally containing merged worker events from
a ``--jobs N`` run) becomes one coherent timeline in ``ui.perfetto.dev``
or ``chrome://tracing``:

* ``span_open``/``span_close`` pairs become complete (``ph: "X"``)
  events — still-open spans from a truncated trace become ``"B"``
  begin events so nothing silently disappears;
* ``timeline`` windows (:mod:`repro.telemetry.timeline`) become counter
  (``ph: "C"``) events, one track per series — SFile/Hist/IBuff
  occupancy, cache residency, per-window miss rates;
* every process that contributed events is a separate *thread* track
  ("main" for the parent session, "worker <pid>" for each pool worker)
  under one process, so worker spans nest visually under the parent
  run's ``suite.parallel`` span.

Cross-process clock alignment uses the ``clock_sync`` events each
telemetry session emits (``perf_counter`` + wall clock + pid):
``perf_counter`` epochs are arbitrary per process, so a worker
timestamp ``t`` is rebased onto the parent's timeline as::

    t_parent = t + (worker.wall - worker.perf) - (parent.wall - parent.perf)

i.e. the wall clocks (shared across processes) bridge the two monotonic
epochs.  Traces recorded without sync events export with raw
timestamps.

:func:`validate_chrome_trace` structurally checks an exported trace
against the ``trace_event`` format, which is what the CI smoke job
asserts before uploading the artifact.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

#: Microseconds per second — trace_event timestamps are in µs.
_US = 1e6

#: The tid assigned to the parent session's events.
MAIN_TID = 1

#: Phases the validator accepts (the subset the exporter emits, plus
#: the duration/instant phases hand-written traces commonly use).
_KNOWN_PHASES = frozenset({"X", "B", "E", "C", "M", "i", "I"})


def _worker_of(event: Dict[str, object]) -> Optional[int]:
    """The worker pid an event was merged from (None = parent session)."""
    worker = event.get("worker")
    return None if worker is None else int(worker)


def _clock_offsets(
    events: Iterable[Dict[str, object]],
) -> Dict[Optional[int], float]:
    """Per-process perf-counter offsets onto the parent's timeline."""
    syncs: Dict[Optional[int], Dict[str, object]] = {}
    for event in events:
        if event.get("type") != "clock_sync":
            continue
        key = _worker_of(event)
        if key not in syncs:  # first sync per process wins
            syncs[key] = event
    parent = syncs.get(None)
    if parent is None:
        return {key: 0.0 for key in syncs}
    parent_skew = float(parent["wall"]) - float(parent["perf"])
    return {
        key: (float(sync["wall"]) - float(sync["perf"])) - parent_skew
        for key, sync in syncs.items()
    }


def _tid(worker: Optional[int]) -> int:
    return MAIN_TID if worker is None else int(worker)


def export_chrome_trace(events: Iterable[Dict[str, object]]) -> Dict[str, object]:
    """Convert parsed JSONL telemetry events into a trace_event object.

    Returns the JSON-able trace dict (``{"traceEvents": [...], ...}``);
    callers serialise it themselves (see ``repro trace export``).
    """
    events = list(events)
    offsets = _clock_offsets(events)
    pid = 1
    for event in events:
        if event.get("type") == "clock_sync" and _worker_of(event) is None:
            pid = int(event.get("pid", 1))
            break

    def rebase(t: float, worker: Optional[int]) -> float:
        return t + offsets.get(worker, 0.0)

    # First pass: the zero point, so the trace starts near ts=0.
    stamps = [
        rebase(float(event["t"]), _worker_of(event))
        for event in events
        if "t" in event
    ]
    t0 = min(stamps) if stamps else 0.0

    def ts_us(t: float, worker: Optional[int]) -> float:
        return (rebase(t, worker) - t0) * _US

    trace_events: List[Dict[str, object]] = []
    workers_seen: List[Optional[int]] = []
    # Open spans by (worker, span id); closed ones emit as X events.
    open_spans: Dict[Tuple[Optional[int], int], Dict[str, object]] = {}

    for event in events:
        worker = _worker_of(event)
        if worker not in workers_seen:
            workers_seen.append(worker)
        kind = event.get("type")
        if kind == "span_open":
            open_spans[(worker, int(event["span"]))] = event
        elif kind == "span_close":
            opened = open_spans.pop((worker, int(event["span"])), None)
            if opened is None:
                continue
            start = ts_us(float(opened["t"]), worker)
            end = ts_us(float(event["t"]), worker)
            args = dict(opened.get("attrs") or {})
            args.update(event.get("attrs") or {})
            args["status"] = event.get("status", "ok")
            if worker is not None:
                args["worker"] = worker
            trace_events.append(
                {
                    "name": str(opened["name"]),
                    "cat": "span",
                    "ph": "X",
                    "ts": start,
                    "dur": max(0.0, end - start),
                    "pid": pid,
                    "tid": _tid(worker),
                    "args": args,
                }
            )
        elif kind == "timeline":
            track = str(event.get("track", "timeline"))
            stamp = ts_us(float(event["t"]), worker)
            series: List[Tuple[str, object]] = []
            series.extend((event.get("levels") or {}).items())
            series.extend((event.get("deltas") or {}).items())
            for name, value in series:
                trace_events.append(
                    {
                        "name": f"{track} {name}",
                        "cat": "timeline",
                        "ph": "C",
                        "ts": stamp,
                        "pid": pid,
                        "tid": _tid(worker),
                        "args": {"value": float(value)},
                    }
                )
        elif kind == "pool":
            # Pool utilisation records (one per finished work unit)
            # become counter tracks, so a Perfetto timeline shows unit
            # cost and queue pressure alongside the spans they explain.
            stamp = ts_us(float(event["t"]), worker)
            for name in ("unit_s", "queue_wait_s"):
                value = event.get(name)
                if value is None:
                    continue
                trace_events.append(
                    {
                        "name": f"pool {name}",
                        "cat": "pool",
                        "ph": "C",
                        "ts": stamp,
                        "pid": pid,
                        "tid": _tid(worker),
                        "args": {"value": float(value)},
                    }
                )

    # Spans that never closed (truncated trace): begin events keep them
    # visible rather than dropping them.
    for (worker, _), opened in sorted(
        open_spans.items(), key=lambda item: float(item[1]["t"])
    ):
        trace_events.append(
            {
                "name": str(opened["name"]),
                "cat": "span",
                "ph": "B",
                "ts": ts_us(float(opened["t"]), worker),
                "pid": pid,
                "tid": _tid(worker),
                "args": dict(opened.get("attrs") or {}),
            }
        )

    # Track metadata: name the process and one thread row per process.
    metadata: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": MAIN_TID,
            "args": {"name": "repro"},
        }
    ]
    for sort_index, worker in enumerate(workers_seen):
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": _tid(worker),
                "args": {
                    "name": "main" if worker is None else f"worker {worker}"
                },
            }
        )
        metadata.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": pid,
                "tid": _tid(worker),
                "args": {"sort_index": sort_index},
            }
        )

    return {
        "traceEvents": metadata + trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro trace export",
            "processes": len(workers_seen),
        },
    }


def validate_chrome_trace(trace: object) -> List[str]:
    """Structural problems of a trace_event object (empty = valid).

    Checks the invariants Perfetto/chrome://tracing rely on: the
    ``traceEvents`` array, known phases, numeric µs timestamps,
    non-negative durations, pid/tid on every event, and numeric counter
    values.
    """
    problems: List[str] = []
    if not isinstance(trace, dict):
        return [f"trace must be a JSON object, got {type(trace).__name__}"]
    trace_events = trace.get("traceEvents")
    if not isinstance(trace_events, list):
        return ["trace.traceEvents must be an array"]
    if not trace_events:
        problems.append("trace.traceEvents is empty")
    for index, event in enumerate(trace_events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing event name")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append(f"{where}: {field} must be an integer")
        if phase == "M":
            if not isinstance(event.get("args"), dict):
                problems.append(f"{where}: metadata event without args")
            continue
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"{where}: ts must be a number")
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)):
                problems.append(f"{where}: X event without numeric dur")
            elif duration < 0:
                problems.append(f"{where}: negative duration {duration}")
        if phase == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not args:
                problems.append(f"{where}: counter event without args")
            elif not all(
                isinstance(value, (int, float)) for value in args.values()
            ):
                problems.append(f"{where}: non-numeric counter value")
    return problems


def trace_summary(trace: Dict[str, object]) -> Dict[str, object]:
    """Quick shape description of an exported trace (for the CLI)."""
    counts: Dict[str, int] = {}
    tids = set()
    names = set()
    for event in trace.get("traceEvents", []):
        phase = str(event.get("ph"))
        counts[phase] = counts.get(phase, 0) + 1
        tids.add(event.get("tid"))
        if phase == "C":
            names.add(str(event.get("name")))
    return {
        "events": sum(counts.values()),
        "by_phase": counts,
        "threads": len(tids),
        "counter_tracks": len(names),
    }
