"""The telemetry runtime: one switchable facade the pipeline talks to.

Instrumented code does not know whether telemetry is on::

    from ..telemetry.runtime import get_telemetry

    telemetry = get_telemetry()
    with telemetry.span("compile.formation", loads=len(candidates)):
        ...
    telemetry.counter("compile.slices").inc(len(chosen))

When disabled (the default), :meth:`Telemetry.span` returns a shared
no-op context manager and :meth:`Telemetry.counter` a shared null
instrument — no allocation, no timing calls, no behavioural difference
from the un-instrumented simulator.  :func:`telemetry_session` swaps in
an enabled :class:`Telemetry` (optionally writing a JSONL trace) for the
duration of a ``with`` block and restores the previous state afterwards,
which is how the CLI's ``--trace-out`` / ``--metrics`` flags and the
test-suite isolate their observations.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import List, Optional, Union

from .registry import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_TIMER,
    MetricsRegistry,
)
from .sink import JsonlSink, ListSink
from .spans import NULL_SPAN_CONTEXT, SpanTracer
from .timeline import TimelineTrack


class Telemetry:
    """Registry + tracer + sink behind a single enabled/disabled gate.

    Two optional deep-observability attachments ride on the facade:

    * ``timeline_window`` — when set, every CPU run started under this
      session gets a :class:`~repro.telemetry.timeline.TimelineTrack`
      sampling structure occupancy/pressure every N retired
      instructions (collected in :attr:`timelines`);
    * ``profiler`` — a
      :class:`~repro.telemetry.profiler.HotLoopProfiler`; when present,
      CPU runs switch to the instrumented dispatch loop and attribute
      host wall clock and modeled energy per opcode.
    """

    def __init__(
        self,
        enabled: bool = False,
        sink=None,
        clock=None,
        timeline_window: Optional[int] = None,
        profiler=None,
    ):
        self.enabled = enabled
        self.sink = sink
        self.registry = MetricsRegistry()
        self.tracer = (
            SpanTracer(sink=sink, clock=clock) if clock else SpanTracer(sink=sink)
        )
        self.timeline_window = timeline_window
        self.profiler = profiler
        self.timelines: List[TimelineTrack] = []

    # ------------------------------------------------------------------
    # Spans.
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs):
        """A timed region; a shared no-op when telemetry is disabled."""
        if not self.enabled:
            return NULL_SPAN_CONTEXT
        return self.tracer.span(name, **attrs)

    # ------------------------------------------------------------------
    # Metrics.
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels):
        if not self.enabled:
            return NULL_COUNTER
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels):
        if not self.enabled:
            return NULL_GAUGE
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, **labels):
        if not self.enabled:
            return NULL_HISTOGRAM
        return self.registry.histogram(name, **labels)

    def timer(self, name: str, **labels):
        if not self.enabled:
            return NULL_TIMER
        return self.registry.timer(name, **labels)

    # ------------------------------------------------------------------
    # Structured events.
    # ------------------------------------------------------------------
    def event(self, event_type: str, **fields) -> None:
        """Emit one structured record (no-op without an enabled sink)."""
        if self.enabled and self.sink is not None:
            self.sink.emit({"type": event_type, **fields})

    def publish_run_stats(self, stats, **labels) -> None:
        """Register a finished run's :class:`RunStats` with the registry."""
        if self.enabled:
            stats.publish(self.registry, **labels)

    # ------------------------------------------------------------------
    # Deep observability attachments (timeline sampler, profiler).
    # ------------------------------------------------------------------
    def active_profiler(self):
        """The installed hot-loop profiler, or None (the common case)."""
        return self.profiler if self.enabled else None

    def open_timeline(self, cpu) -> Optional[TimelineTrack]:
        """Attach a windowed timeline track to a starting CPU run.

        Returns None unless this session was configured with a
        ``timeline_window`` — the retire path then pays only a single
        ``is None`` check per instruction.
        """
        if not self.enabled or self.timeline_window is None:
            return None
        attrs = {}
        policy = getattr(cpu, "policy", None)
        if policy is not None:
            attrs["policy"] = policy.name
        track = TimelineTrack(
            label=f"{cpu.TELEMETRY_LABEL}#{len(self.timelines)}",
            observe=cpu.observe,
            window=self.timeline_window,
            sink=self.sink,
            attrs=attrs,
        )
        self.timelines.append(track)
        return track

    def emit_clock_sync(self) -> None:
        """Record this process's perf-counter/wall-clock correspondence.

        One ``clock_sync`` event per session lets the trace exporter map
        every process's monotonic span timestamps onto one shared
        timeline (see :mod:`repro.telemetry.export`).
        """
        self.event(
            "clock_sync",
            perf=time.perf_counter(),
            wall=time.time(),
            pid=os.getpid(),
        )

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()


#: The process-wide default: telemetry off.
_DISABLED = Telemetry(enabled=False)
_current: Telemetry = _DISABLED


def get_telemetry() -> Telemetry:
    """The active telemetry facade (instrumented code calls this)."""
    return _current


def set_telemetry(telemetry: Telemetry) -> Telemetry:
    """Install *telemetry* as the active facade; returns the previous one."""
    global _current
    previous = _current
    _current = telemetry
    return previous


@contextmanager
def telemetry_session(
    trace_path: Optional[str] = None,
    sink=None,
    collect_events: bool = False,
    timeline_window: Optional[int] = None,
    profiler=None,
):
    """Enable telemetry for a ``with`` block, then restore prior state.

    *trace_path* writes every event as JSONL to that file;
    *sink* supplies an explicit sink object instead;
    *collect_events* (no path/sink) buffers events in a
    :class:`~repro.telemetry.sink.ListSink` for in-process inspection;
    *timeline_window* attaches a windowed microarchitectural timeline
    sampler to every CPU run in the block;
    *profiler* installs a
    :class:`~repro.telemetry.profiler.HotLoopProfiler` on the session.

    Sessions with a sink immediately record a ``clock_sync`` event so
    cross-process traces can be aligned onto one timeline.
    """
    if sink is None:
        if trace_path is not None:
            sink = JsonlSink(trace_path)
        elif collect_events:
            sink = ListSink()
    session = Telemetry(
        enabled=True,
        sink=sink,
        timeline_window=timeline_window,
        profiler=profiler,
    )
    if sink is not None:
        session.emit_clock_sync()
    previous = set_telemetry(session)
    try:
        yield session
    finally:
        set_telemetry(previous)
        session.close()
