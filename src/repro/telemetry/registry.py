"""Labeled metrics: counters, gauges, histograms, and timers.

The registry is the single home for run-time measurements.  Every
series is identified by a metric name plus a (sorted) label set, so
``registry.counter("rcmp.outcomes", policy="FLC", outcome="fired")`` and
the same name under ``outcome="skipped"`` are independent series that
render side by side.

Instruments are plain Python objects with one hot method each
(:meth:`Counter.inc`, :meth:`Gauge.set`, :meth:`Histogram.observe`); the
module also provides shared *null* instances (:data:`NULL_COUNTER` and
friends) that absorb updates, which the telemetry runtime hands out when
telemetry is disabled so instrumented code pays only an attribute check.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple, Union

Number = Union[int, float]
LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Dict[str, object]) -> LabelSet:
    """Normalise keyword labels into a hashable, ordered key."""
    return tuple(sorted((str(key), str(value)) for key, value in labels.items()))


def format_series(name: str, labels: LabelSet) -> str:
    """Render ``name{k=v,...}`` for tables and snapshots."""
    if not labels:
        return name
    inner = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelSet = ()):
        self.name = name
        self.labels = labels
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def snapshot(self) -> Number:
        return self.value


class Gauge:
    """A value that can move both ways (occupancy, high-water, ...)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelSet = ()):
        self.name = name
        self.labels = labels
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def snapshot(self) -> Number:
        return self.value


class Histogram:
    """A distribution with exact percentiles.

    Observations are retained, which is fine at this simulator's scale
    (spans and per-phase timings, not per-instruction samples); exact
    retention keeps :meth:`percentile` honest for tests and reports.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "_values")

    def __init__(self, name: str, labels: LabelSet = ()):
        self.name = name
        self.labels = labels
        self._values: List[Number] = []

    def observe(self, value: Number) -> None:
        self._values.append(value)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def sum(self) -> Number:
        return sum(self._values)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self._values else 0.0

    @property
    def min(self) -> Number:
        return min(self._values) if self._values else 0

    @property
    def max(self) -> Number:
        return max(self._values) if self._values else 0

    def percentile(self, q: float) -> float:
        """Exact q-th percentile (0 <= q <= 100, linear interpolation)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile {q} outside [0, 100]")
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        if len(ordered) == 1:
            return float(ordered[0])
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(rank)
        frac = rank - low
        if frac == 0.0:
            return float(ordered[low])
        return float(ordered[low] + (ordered[low + 1] - ordered[low]) * frac)

    def snapshot(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": float(self.sum),
            "min": float(self.min),
            "max": float(self.max),
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }


class Timer:
    """Context manager feeding wall-clock durations into a histogram."""

    __slots__ = ("histogram", "_clock", "_start")

    def __init__(self, histogram: Histogram, clock=time.perf_counter):
        self.histogram = histogram
        self._clock = clock
        self._start: Optional[float] = None

    def __enter__(self) -> "Timer":
        self._start = self._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.histogram.observe(self._clock() - self._start)


class MetricsRegistry:
    """All live metric series, keyed by ``(name, labels)``."""

    def __init__(self):
        self._series: Dict[Tuple[str, LabelSet], object] = {}

    def _instrument(self, factory, name: str, labels: Dict[str, object]):
        key = (name, _labelset(labels))
        metric = self._series.get(key)
        if metric is None:
            metric = factory(name, key[1])
            self._series[key] = metric
        elif not isinstance(metric, factory):
            raise TypeError(
                f"metric {format_series(*key)} already registered as "
                f"{metric.kind}, not {factory.kind}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._instrument(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._instrument(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._instrument(Histogram, name, labels)

    def timer(self, name: str, **labels) -> Timer:
        return Timer(self.histogram(name, **labels))

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def get(self, name: str, **labels):
        """The series for (name, labels), or None if never touched."""
        return self._series.get((name, _labelset(labels)))

    def value(self, name: str, **labels):
        """Convenience: a counter/gauge's value, or None if absent."""
        metric = self.get(name, **labels)
        return None if metric is None else metric.value

    def series(self, name: Optional[str] = None) -> List[object]:
        """All series, or all series of one metric name, sorted."""
        return [
            metric for (metric_name, _), metric in sorted(self._series.items())
            if name is None or metric_name == name
        ]

    def snapshot(self) -> Dict[str, object]:
        """JSON-able view of every series."""
        return {
            format_series(name, labels): metric.snapshot()
            for (name, labels), metric in sorted(self._series.items())
        }

    # ------------------------------------------------------------------
    # Cross-process transfer (the parallel engine's telemetry merge).
    # ------------------------------------------------------------------
    def dump(self) -> List[Dict[str, object]]:
        """Picklable, merge-ready view of every series.

        Unlike :meth:`snapshot` (which collapses histograms into summary
        statistics), the dump keeps raw histogram observations so a
        receiving registry can merge them losslessly.
        """
        entries: List[Dict[str, object]] = []
        for (name, labels), metric in sorted(self._series.items()):
            entry: Dict[str, object] = {
                "kind": metric.kind, "name": name, "labels": list(labels)
            }
            if metric.kind == "histogram":
                entry["values"] = list(metric._values)
            else:
                entry["value"] = metric.value
            entries.append(entry)
        return entries

    def merge_dump(self, entries: List[Dict[str, object]]) -> None:
        """Fold a :meth:`dump` from another registry into this one.

        Counters add, histograms extend with the foreign observations,
        and gauges take the incoming value (last writer wins — gauges
        describe instantaneous state, which has no cross-process sum).
        """
        for entry in entries:
            labels = dict(entry["labels"])
            kind = entry["kind"]
            if kind == "counter":
                self.counter(entry["name"], **labels).inc(entry["value"])
            elif kind == "gauge":
                self.gauge(entry["name"], **labels).set(entry["value"])
            elif kind == "histogram":
                histogram = self.histogram(entry["name"], **labels)
                for value in entry["values"]:
                    histogram.observe(value)
            else:
                raise ValueError(f"unknown metric kind {kind!r} in dump")

    def clear(self) -> None:
        self._series.clear()

    def __len__(self) -> int:
        return len(self._series)


# ----------------------------------------------------------------------
# Shared no-op instruments (telemetry disabled).
# ----------------------------------------------------------------------
class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: Number = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: Number) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: Number) -> None:
        pass


class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NULL_COUNTER = _NullCounter("null")
NULL_GAUGE = _NullGauge("null")
NULL_HISTOGRAM = _NullHistogram("null")
NULL_TIMER = _NullTimer()
