"""Human-readable views over a telemetry session.

Renders the three things an operator actually reads after a run: the
span tree with wall-clock durations, the hottest span names by self
time, and the RCMP decision breakdown (how often each policy fired,
skipped, or fell back, and why).  ``repro stats`` and the ``--metrics``
flag are thin wrappers over these functions.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Tuple

from .registry import MetricsRegistry, format_series
from .runtime import Telemetry
from .spans import SpanNode


def _format_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.0f}us"


def _format_attrs(attrs: Dict[str, object]) -> str:
    if not attrs:
        return ""
    inner = ", ".join(f"{key}={value}" for key, value in attrs.items())
    return f" [{inner}]"


def render_span_tree(roots: Iterable[SpanNode]) -> str:
    """Indented tree: one line per span with duration and attributes."""
    lines: List[str] = []

    def visit(node: SpanNode, depth: int) -> None:
        marker = "" if node.span.status == "ok" else " !error"
        lines.append(
            f"{'  ' * depth}{node.name:<{max(1, 28 - 2 * depth)}} "
            f"{_format_duration(node.duration_s):>10}"
            f"{marker}{_format_attrs(node.span.attrs)}"
        )
        for child in node.children:
            visit(child, depth + 1)

    for root in roots:
        visit(root, 0)
    return "\n".join(lines) if lines else "(no spans recorded)"


@dataclasses.dataclass(frozen=True)
class PhaseTotal:
    """Aggregate cost of one span name across a whole session."""

    name: str
    self_time_s: float
    count: int


def phase_totals(roots: Iterable[SpanNode]) -> List[PhaseTotal]:
    """Per-span-name self-time totals over the forest, hottest first.

    Self time (duration minus child durations) is used so the totals
    partition the wall clock instead of double-counting nested phases —
    summing every entry reproduces the session's traced time.  This is
    the aggregation the benchmarking artifacts (``repro bench``) persist
    as per-phase timings.
    """
    self_time: Dict[str, float] = defaultdict(float)
    counts: Dict[str, int] = defaultdict(int)
    for root in roots:
        for node in root.walk():
            self_time[node.name] += node.self_time_s
            counts[node.name] += 1
    ranked = sorted(self_time.items(), key=lambda item: (-item[1], item[0]))
    return [
        PhaseTotal(name=name, self_time_s=seconds, count=counts[name])
        for name, seconds in ranked
    ]


def hottest_spans(
    roots: Iterable[SpanNode], top: int = 5
) -> List[Tuple[str, float, int]]:
    """``(name, total self time, count)`` aggregated over the forest."""
    return [
        (total.name, total.self_time_s, total.count)
        for total in phase_totals(roots)[:top]
    ]


def render_hottest_spans(roots: Iterable[SpanNode], top: int = 5) -> str:
    rows = hottest_spans(roots, top)
    if not rows:
        return "(no spans recorded)"
    lines = [f"top {len(rows)} spans by self time:"]
    for rank, (name, seconds, count) in enumerate(rows, start=1):
        lines.append(
            f"  {rank}. {name:<28} {_format_duration(seconds):>10}  (x{count})"
        )
    return "\n".join(lines)


def rcmp_breakdown(registry: MetricsRegistry) -> Dict[str, Dict[str, int]]:
    """``{policy: {outcome: count}}`` from the ``rcmp.outcomes`` series."""
    breakdown: Dict[str, Dict[str, int]] = defaultdict(dict)
    for series in registry.series("rcmp.outcomes"):
        labels = dict(series.labels)
        policy = labels.get("policy", "?")
        outcome = labels.get("outcome", "?")
        breakdown[policy][outcome] = series.value
    return dict(breakdown)


def render_rcmp_breakdown(registry: MetricsRegistry) -> str:
    breakdown = rcmp_breakdown(registry)
    if not breakdown:
        return "(no RCMP decisions recorded)"
    outcomes = ("fired", "skipped", "fallback")
    lines = ["RCMP decisions (per policy):"]
    header = f"  {'policy':<10}" + "".join(f"{o:>10}" for o in outcomes) + f"{'total':>10}"
    lines.append(header)
    for policy in sorted(breakdown):
        row = breakdown[policy]
        total = sum(row.values())
        cells = "".join(f"{row.get(outcome, 0):>10}" for outcome in outcomes)
        lines.append(f"  {policy:<10}{cells}{total:>10}")
    return "\n".join(lines)


#: The two cache layers and the metric series that count their traffic:
#: the in-memory ``SuiteRunner`` memoisation and the persistent on-disk
#: :class:`~repro.harness.cache.ResultCache`.
CACHE_SERIES = {"memory": "suite.cache", "disk": "suite.result_cache"}


def cache_stats(registry: MetricsRegistry) -> Dict[str, Dict[str, int]]:
    """``{layer: {result: count}}`` for both result-cache layers.

    Layers with no recorded traffic are omitted, so a run without a
    configured disk cache reports only the memory layer (or nothing).
    """
    stats: Dict[str, Dict[str, int]] = {}
    for layer, metric_name in CACHE_SERIES.items():
        counts: Dict[str, int] = {}
        for series in registry.series(metric_name):
            result = dict(series.labels).get("result", "?")
            counts[result] = counts.get(result, 0) + series.value
        if counts:
            stats[layer] = counts
    return stats


def cache_hit_rate(counts: Dict[str, int]) -> Optional[float]:
    """Hit fraction of one layer's counts, or ``None`` with no lookups.

    Corrupt entries are misses that additionally destroyed an entry, so
    they count against the rate.
    """
    hits = counts.get("hit", 0)
    lookups = hits + counts.get("miss", 0) + counts.get("corrupt", 0)
    if lookups == 0:
        return None
    return hits / lookups


#: Disk-cache I/O counters (:mod:`repro.harness.cache`): what moved, in
#: operations and bytes, as opposed to the per-layer lookup verdicts.
CACHE_IO_SERIES = (
    "cache.hits",
    "cache.misses",
    "cache.corrupt_misses",
    "cache.bytes_written",
)


def cache_io_stats(registry: MetricsRegistry) -> Dict[str, float]:
    """The ``cache.*`` operational counters that saw traffic.

    Keys are the bare counter suffixes (``hits``, ``misses``,
    ``corrupt_misses``, ``bytes_written``); untouched counters are
    omitted so a run without a disk cache reports ``{}``.
    """
    stats: Dict[str, float] = {}
    for metric_name in CACHE_IO_SERIES:
        total = sum(series.value for series in registry.series(metric_name))
        if total or registry.series(metric_name):
            stats[metric_name.split(".", 1)[1]] = total
    return stats


def pool_stats(registry: MetricsRegistry) -> Dict[str, object]:
    """Pool utilisation from the ``pool.*`` series, or ``{}`` if unused.

    ``busy_s`` maps worker pid to total busy seconds; ``unit_s`` and
    ``queue_wait_s`` are histogram snapshots; the straggler gauges are
    copied through as plain numbers.
    """
    stats: Dict[str, object] = {}
    busy: Dict[str, float] = {}
    for series in registry.series("pool.busy_s"):
        worker = dict(series.labels).get("worker", "?")
        busy[worker] = busy.get(worker, 0.0) + float(series.sum)
    if busy:
        stats["busy_s"] = busy
    for name in ("pool.unit_s", "pool.queue_wait_s"):
        for series in registry.series(name):
            stats[name.split(".", 1)[1]] = series.snapshot()
    for name in (
        "pool.workers", "pool.straggler_max_s",
        "pool.straggler_median_s", "pool.straggler_ratio",
    ):
        for series in registry.series(name):
            stats[name.split(".", 1)[1]] = series.value
    return stats


def render_cache_stats(registry: MetricsRegistry) -> str:
    """Cache effectiveness, one line per layer (memory / disk)."""
    stats = cache_stats(registry)
    io = cache_io_stats(registry)
    if not stats and not io:
        return "(no result-cache traffic recorded)"
    lines = ["result caches:"]
    for layer in ("memory", "disk"):
        counts = stats.get(layer)
        if not counts:
            continue
        rate = cache_hit_rate(counts)
        rate_text = "n/a" if rate is None else f"{100 * rate:.1f}%"
        detail = ", ".join(
            f"{result}={counts[result]}" for result in sorted(counts)
        )
        lines.append(f"  {layer:<7} hit rate {rate_text:>6}  ({detail})")
    if io:
        detail = ", ".join(
            f"{name}={int(io[name])}" for name in (
                "hits", "misses", "corrupt_misses", "bytes_written"
            ) if name in io
        )
        lines.append(f"  disk io  {detail}")
    return "\n".join(lines)


def render_pool_stats(registry: MetricsRegistry) -> str:
    """Worker-pool utilisation: busy time per worker plus stragglers."""
    stats = pool_stats(registry)
    if not stats:
        return "(no pool activity recorded)"
    lines = ["worker pool:"]
    busy = stats.get("busy_s", {})
    for worker in sorted(busy):
        lines.append(f"  worker {worker:<8} busy {busy[worker]:.2f}s")
    unit = stats.get("unit_s")
    if unit:
        lines.append(
            f"  unit time   p50 {unit['p50']:.2f}s  max {unit['max']:.2f}s  "
            f"(x{unit['count']})"
        )
    wait = stats.get("queue_wait_s")
    if wait:
        lines.append(
            f"  queue wait  p50 {wait['p50']:.3f}s  max {wait['max']:.3f}s"
        )
    ratio = stats.get("straggler_ratio")
    if ratio is not None:
        lines.append(f"  straggler   max/median = {ratio:.2f}")
    return "\n".join(lines)


def render_metrics(registry: MetricsRegistry) -> str:
    """Every registered series, one line each."""
    all_series = registry.series()
    if not all_series:
        return "(no metrics recorded)"
    lines = ["metrics:"]
    for series in all_series:
        label = format_series(series.name, series.labels)
        if series.kind == "histogram":
            snap = series.snapshot()
            lines.append(
                f"  {label:<56} count={snap['count']} mean={snap['mean']:.4g} "
                f"p50={snap['p50']:.4g} p95={snap['p95']:.4g} max={snap['max']:.4g}"
            )
        else:
            lines.append(f"  {label:<56} {series.value}")
    return "\n".join(lines)


def render_summary(telemetry: Telemetry, top: int = 5, metrics: bool = True) -> str:
    """The full post-run report: tree, hot spans, RCMP table, metrics."""
    roots = telemetry.tracer.tree()
    sections = [
        "== span tree ==",
        render_span_tree(roots),
        "",
        "== hottest spans ==",
        render_hottest_spans(roots, top),
        "",
        "== recomputation ==",
        render_rcmp_breakdown(telemetry.registry),
        "",
        "== result cache ==",
        render_cache_stats(telemetry.registry),
    ]
    if pool_stats(telemetry.registry):
        sections += ["", "== worker pool ==", render_pool_stats(telemetry.registry)]
    if metrics:
        sections += ["", "== metrics ==", render_metrics(telemetry.registry)]
    return "\n".join(sections)
