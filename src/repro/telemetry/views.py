"""Live views of the paper's Figure 6-8 observables, mid-run.

The post-hoc experiments (:mod:`repro.harness.experiments`) compute the
figure data from *compilation* results after a run finishes; these
views derive the same observables from the telemetry a session records
*while it runs* — per-RCMP decision events and timeline windows — so
fidelity drift is attributable to a specific policy, benchmark, or
execution window instead of only being scored at the end.

All functions take parsed event dicts (a live ``ListSink.events`` list
or a :func:`repro.telemetry.sink.read_events` result) or the session's
:class:`~repro.telemetry.timeline.TimelineTrack` objects; nothing here
touches the interpreters.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Optional

from .timeline import TimelineTrack


def _rcmp_events(events: Iterable[Dict[str, object]]):
    for event in events:
        if event.get("type") == "rcmp":
            yield event


def slice_length_view(
    events: Iterable[Dict[str, object]], outcome: Optional[str] = "fired"
) -> Dict[int, int]:
    """Dynamic RSlice-length distribution (the Fig. 6 observable, live).

    Figure 6 plots static slice lengths from the compiler; the live view
    counts the lengths of slices the scheduler actually *fired* (pass
    ``outcome=None`` for every RCMP regardless of verdict), which is the
    execution-weighted version of the same distribution.
    """
    lengths: Counter = Counter()
    for event in _rcmp_events(events):
        if outcome is not None and event.get("outcome") != outcome:
            continue
        lengths[int(event.get("slice_len", 0))] += 1
    return dict(sorted(lengths.items()))


def share_below(lengths: Dict[int, int], limit: int = 10) -> float:
    """Fraction of slices shorter than *limit* (Fig. 6's headline stat)."""
    total = sum(lengths.values())
    if total == 0:
        return 0.0
    short = sum(count for length, count in lengths.items() if length < limit)
    return short / total


def checkpoint_readiness_view(
    events: Iterable[Dict[str, object]],
) -> Dict[str, Dict[str, int]]:
    """Per-policy availability of non-recomputable-leaf checkpoints.

    The live counterpart of Figure 7: where Fig. 7 reports the static
    share of RSlices *with* non-recomputable leaf inputs, this reports
    how often those inputs' Hist checkpoints were actually present when
    an RCMP consulted them (``hist_ready``), split by decision outcome.
    """
    readiness: Dict[str, Dict[str, int]] = defaultdict(
        lambda: {"ready": 0, "missing": 0}
    )
    for event in _rcmp_events(events):
        policy = str(event.get("policy", "?"))
        key = "ready" if event.get("hist_ready") else "missing"
        readiness[policy][key] += 1
    return dict(readiness)


def residence_view(
    events: Iterable[Dict[str, object]], fired_only: bool = False
) -> Dict[str, int]:
    """Where the loads behind RCMP decisions would have been serviced.

    The live counterpart of the Fig. 8 / Table 5 locality observables:
    a histogram of the residence level (L1/L2/MEM) the scheduler saw at
    each RCMP, optionally restricted to fired ones (i.e. where swapped
    loads would have hit).
    """
    residence: Counter = Counter()
    for event in _rcmp_events(events):
        if fired_only and event.get("outcome") != "fired":
            continue
        residence[str(event.get("residence", "?"))] += 1
    return dict(sorted(residence.items()))


def occupancy_view(
    timelines: Iterable[TimelineTrack],
    structures: Iterable[str] = ("sfile", "hist", "ibuff"),
) -> Dict[str, Dict[str, float]]:
    """Peak and mean occupancy per structure across the session's runs.

    The data the checkpointing follow-up (arXiv 1710.04685) needs:
    Hist/SFile occupancy over time, folded here to peak / mean /
    final-window values per amnesic structure.
    """
    views: Dict[str, Dict[str, float]] = {}
    for track in timelines:
        for structure in structures:
            name = f"{structure}.occupancy"
            series = track.level_series(name)
            if not series or not any(series):
                continue
            view = views.setdefault(
                structure, {"peak": 0.0, "mean": 0.0, "last": 0.0, "_n": 0.0}
            )
            view["peak"] = max(view["peak"], max(series))
            view["mean"] += sum(series)
            view["_n"] += len(series)
            view["last"] = series[-1]
    for view in views.values():
        if view["_n"]:
            view["mean"] /= view["_n"]
        del view["_n"]
    return views


def figure_observables(
    events: Iterable[Dict[str, object]],
    timelines: Iterable[TimelineTrack] = (),
) -> Dict[str, object]:
    """Every live figure observable in one JSON-able payload.

    ``repro stats --format json`` embeds this, so a monitoring loop can
    diff the mid-run distributions against the paper targets without
    waiting for the experiment harness.
    """
    events = list(events)
    lengths = slice_length_view(events)
    return {
        "slice_lengths": lengths,
        "slice_share_below_10": share_below(lengths, 10),
        "checkpoint_readiness": checkpoint_readiness_view(events),
        "rcmp_residence": residence_view(events),
        "fired_residence": residence_view(events, fired_only=True),
        "occupancy": occupancy_view(list(timelines)),
    }
