"""Microarchitectural timelines: windowed occupancy/pressure sampling.

The paper's evaluation reads end-of-run aggregates; this module records
*when* things happened.  A :class:`TimelineTrack` is attached to one
interpreter run (classic or amnesic) by the telemetry runtime; the CPU's
retire path ticks it, and every ``window`` retired instructions the
track polls the narrow ``observe()`` hooks the machine structures expose
(SFile, Hist, IBuff, the L1/L2 caches, and the run counters) and records
one :class:`WindowSample`.

Series come in two kinds, distinguished by the last path segment of the
series name:

* **levels** (``occupancy``, ``high_water``, ``live_mappings``) — the
  instantaneous reading at the window boundary;
* **cumulative counters** (everything else: hits, misses, reads,
  writes, evictions, ...) — the sampler differences consecutive
  snapshots into per-window *rates*, so a sample answers "how much Hist
  traffic happened in this window", not "since boot".

Sampling is pull-based and windowed: the per-instruction cost is one
attribute load and an integer compare, and the (dict-building) snapshot
work runs once per window.  When telemetry is disabled no track is ever
attached and the retire path pays only the ``is None`` check.

Each sample is also emitted to the session sink as a ``timeline`` event,
which is what :mod:`repro.telemetry.export` turns into Perfetto counter
tracks.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional

#: Default window width in retired instructions.
DEFAULT_TIMELINE_WINDOW = 1_000

#: Final series-name segments that denote instantaneous levels rather
#: than cumulative counters.
LEVEL_SEGMENTS = frozenset({"occupancy", "high_water", "live_mappings"})


def is_level_series(name: str) -> bool:
    """True when *name* reads as an instantaneous level, not a counter."""
    return name.rsplit(".", 1)[-1] in LEVEL_SEGMENTS


@dataclasses.dataclass
class WindowSample:
    """One timeline window: levels at the boundary, deltas across it."""

    index: int
    start_instr: int
    end_instr: int
    #: Host wall-clock (``perf_counter``) at capture, for trace export.
    wall_s: float
    levels: Dict[str, float]
    deltas: Dict[str, float]

    @property
    def instructions(self) -> int:
        return self.end_instr - self.start_instr


class TimelineTrack:
    """Windowed sample stream for one interpreter run.

    The CPU retire path calls :meth:`tick`; everything else (snapshot
    polling, delta computation, event emission) happens at window
    boundaries only.  ``label`` identifies the run (``classic#0``,
    ``amnesic#2``...), and ``attrs`` carries run context such as the
    scheduler policy.
    """

    __slots__ = (
        "label", "window", "attrs", "samples", "next_capture",
        "_observe", "_sink", "_clock", "_last", "_last_instr", "_closed",
    )

    def __init__(
        self,
        label: str,
        observe,
        window: int = DEFAULT_TIMELINE_WINDOW,
        sink=None,
        clock=time.perf_counter,
        attrs: Optional[Dict[str, object]] = None,
    ):
        if window < 1:
            raise ValueError("timeline window must be positive")
        self.label = label
        self.window = window
        self.attrs = dict(attrs or {})
        self.samples: List[WindowSample] = []
        self.next_capture = window
        self._observe = observe
        self._sink = sink
        self._clock = clock
        self._last: Dict[str, float] = dict(observe())
        self._last_instr = 0
        self._closed = False

    # ------------------------------------------------------------------
    # The hot-path entry point.
    # ------------------------------------------------------------------
    def tick(self, retired: int) -> None:
        """Called per retired instruction; captures at window boundaries."""
        if retired >= self.next_capture:
            self.capture(retired)

    # ------------------------------------------------------------------
    # Window capture.
    # ------------------------------------------------------------------
    def capture(self, retired: int) -> Optional[WindowSample]:
        """Snapshot the structures and close the current window."""
        if retired <= self._last_instr:
            self.next_capture = self._last_instr + self.window
            return None
        snapshot = dict(self._observe())
        levels: Dict[str, float] = {}
        deltas: Dict[str, float] = {}
        last = self._last
        for name, value in snapshot.items():
            if is_level_series(name):
                levels[name] = value
            else:
                deltas[name] = value - last.get(name, 0)
        sample = WindowSample(
            index=len(self.samples),
            start_instr=self._last_instr,
            end_instr=retired,
            wall_s=self._clock(),
            levels=levels,
            deltas=deltas,
        )
        self.samples.append(sample)
        self._last = snapshot
        self._last_instr = retired
        self.next_capture = retired + self.window
        if self._sink is not None:
            self._sink.emit(
                {
                    "type": "timeline",
                    "track": self.label,
                    "window": sample.index,
                    "t": sample.wall_s,
                    "start_instr": sample.start_instr,
                    "end_instr": sample.end_instr,
                    "levels": levels,
                    "deltas": deltas,
                    "attrs": self.attrs,
                }
            )
        return sample

    def close(self, retired: int) -> None:
        """Capture the final (possibly partial) window once, at run end."""
        if self._closed:
            return
        self._closed = True
        # Push the boundary out of the way so the partial window records.
        self.capture(retired)

    # ------------------------------------------------------------------
    # Derived views.
    # ------------------------------------------------------------------
    def series_names(self) -> List[str]:
        """Every level and delta series this track recorded."""
        names = set()
        for sample in self.samples:
            names.update(sample.levels)
            names.update(sample.deltas)
        return sorted(names)

    def level_series(self, name: str) -> List[float]:
        """The per-window readings of one level series."""
        return [sample.levels.get(name, 0.0) for sample in self.samples]

    def delta_series(self, name: str) -> List[float]:
        """The per-window deltas of one cumulative series."""
        return [sample.deltas.get(name, 0.0) for sample in self.samples]

    def peak(self, name: str) -> float:
        """Maximum reading of a level series across the run."""
        values = self.level_series(name)
        return max(values) if values else 0.0


def render_track(track: TimelineTrack, series: Optional[List[str]] = None,
                 width: int = 40) -> str:
    """A terminal sparkline-ish rendering of selected level series."""
    blocks = " .:-=+*#%@"
    names = series or [n for n in track.series_names() if is_level_series(n)]
    lines = [f"timeline {track.label} "
             f"({len(track.samples)} windows of {track.window} instr)"]
    for name in names:
        values = track.level_series(name)
        if not values:
            continue
        top = max(values)
        if len(values) > width:
            # Downsample by taking the max of each chunk (pressure view).
            chunk = len(values) / width
            values = [
                max(values[int(i * chunk): max(int((i + 1) * chunk), int(i * chunk) + 1)])
                for i in range(width)
            ]
        if top <= 0:
            bar = " " * len(values)
        else:
            bar = "".join(
                blocks[min(int(v / top * (len(blocks) - 1)), len(blocks) - 1)]
                for v in values
            )
        lines.append(f"  {name:<24} |{bar}| peak {top:g}")
    return "\n".join(lines)
