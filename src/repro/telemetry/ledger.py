"""Persistent run ledger: an append-only manifest store across runs.

Every in-run observability layer (spans, timelines, the profiler)
forgets everything at process exit.  The ledger is the cross-run
memory: each retired run, experiment, or benchmarking pass appends one
schema-versioned :class:`RunManifest` — what was run (command, target,
scale, backend, policies, model fingerprint, seed), under what
environment (git revision, python, platform), and what it cost (wall
time per phase, instructions/sec, energy, fidelity, cache and pool
traffic).  A warm ledger turns thousands of runs into a queryable
trajectory: ``repro runs list/show/diff`` browse it and ``repro runs
check`` (:mod:`repro.telemetry.drift`) gates on it.

Storage is one JSONL file (``ledger.jsonl``) inside the ledger
directory.  Appends are a *single* ``os.write`` on an ``O_APPEND``
descriptor, so concurrent writers — parallel CI jobs, forked workers —
interleave whole lines, never fragments, without any locking or temp
files.  Reads mirror :func:`repro.telemetry.sink.read_events`: a torn
final line (a writer killed mid-append) is skipped and counted, never
raised.

The ledger is opt-in: with no ``--ledger-dir`` / ``$REPRO_LEDGER_DIR``
configured nothing is written and nothing is paid.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import platform
import subprocess
import time
import uuid
from typing import Dict, List, Optional, Sequence

#: Bump on any change to the manifest field layout or semantics.
LEDGER_SCHEMA_VERSION = 1

#: The single JSONL file inside a ledger directory.
LEDGER_FILENAME = "ledger.jsonl"

#: ``$REPRO_LEDGER_DIR`` enables the ledger without a CLI flag.
LEDGER_ENV_VAR = "REPRO_LEDGER_DIR"


# ----------------------------------------------------------------------
# Provenance: what produced a manifest.
# ----------------------------------------------------------------------
def git_revision() -> Optional[str]:
    """The checked-out commit, or ``None`` outside a git work tree."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5,
            cwd=pathlib.Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def provenance() -> Dict[str, object]:
    """Interpreter/platform/source identity shared by every manifest."""
    return {
        "git_sha": git_revision(),
        "python": platform.python_version(),
        "platform": platform.platform(),
    }


def new_run_id() -> str:
    """A unique, roughly time-sortable run identifier.

    ``<utc stamp>-<pid>-<random>``: the stamp keeps ``runs list`` output
    readable, the pid disambiguates simultaneous writers, and the random
    suffix makes collisions impossible even within one process-second.
    """
    stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
    return f"{stamp}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


# ----------------------------------------------------------------------
# The manifest.
# ----------------------------------------------------------------------
@dataclasses.dataclass
class RunManifest:
    """One retired run, by value: identity, configuration, and cost."""

    schema_version: int
    run_id: str
    created: str
    created_unix: float
    #: What kind of entry point retired: ``run`` / ``experiment`` /
    #: ``bench`` (new kinds are data, not schema).
    kind: str
    #: The rendered command (``repro run mcf``), for humans.
    command: str
    #: Benchmark name, experiment id, or comma-joined bench selection.
    target: str
    scale: float
    backend: str
    policies: List[str]
    model_fingerprint: Optional[str] = None
    seed: Optional[int] = None
    # Environment provenance.
    git_sha: Optional[str] = None
    python: Optional[str] = None
    platform: Optional[str] = None
    # Cost and outcome.
    wall_s: float = 0.0
    #: ``{span name: self seconds}`` from the session's phase totals.
    phases: Dict[str, float] = dataclasses.field(default_factory=dict)
    instructions: int = 0
    ips: float = 0.0
    energy_nj: float = 0.0
    #: ``{"score": within-fraction, "metrics": n, "mean_abs_error_pp": x}``
    #: for fidelity-scored runs (bench), else ``None``.
    fidelity: Optional[Dict[str, float]] = None
    #: ``{layer: {result: count}}`` — memory/disk result-cache lookups.
    cache: Dict[str, Dict[str, int]] = dataclasses.field(default_factory=dict)
    #: Disk-cache I/O counters (hits/misses/corrupt_misses/bytes_written).
    cache_io: Dict[str, float] = dataclasses.field(default_factory=dict)
    #: Pool utilisation (workers, busy seconds, queue wait, stragglers).
    pool: Dict[str, float] = dataclasses.field(default_factory=dict)
    #: Forward-compatibility bucket: fields this build does not know.
    extra: Dict[str, object] = dataclasses.field(default_factory=dict)

    def to_json(self) -> dict:
        payload = dataclasses.asdict(self)
        extra = payload.pop("extra")
        payload.update(extra)
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "RunManifest":
        """Rebuild a manifest, parking unknown fields in ``extra``.

        A newer build's extra fields survive a round trip through an
        older reader — the ledger is shared by many source revisions,
        so readers must never drop what they do not understand.
        """
        known = {field.name for field in dataclasses.fields(cls)} - {"extra"}
        fields = {key: value for key, value in payload.items() if key in known}
        extra = {
            key: value for key, value in payload.items() if key not in known
        }
        fields.setdefault("schema_version", LEDGER_SCHEMA_VERSION)
        return cls(extra=extra, **fields)

    @classmethod
    def new(cls, kind: str, command: str, target: str, **fields) -> "RunManifest":
        """A manifest stamped with fresh identity and provenance."""
        source = provenance()
        fields.setdefault("git_sha", source["git_sha"])
        fields.setdefault("python", source["python"])
        fields.setdefault("platform", source["platform"])
        fields.setdefault("scale", 1.0)
        fields.setdefault("backend", "classic")
        fields.setdefault("policies", [])
        return cls(
            schema_version=LEDGER_SCHEMA_VERSION,
            run_id=new_run_id(),
            created=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            created_unix=time.time(),
            kind=kind,
            command=command,
            target=target,
            **fields,
        )


class LedgerReadResult(List[RunManifest]):
    """Parsed manifests plus how many undecodable lines were skipped."""

    def __init__(self, manifests=(), skipped_lines: int = 0):
        super().__init__(manifests)
        self.skipped_lines = skipped_lines


class AmbiguousRunId(KeyError):
    """A run-id prefix matched more than one manifest."""


class UnknownRunId(KeyError):
    """A run-id (or prefix) matched no manifest."""


class RunLedger:
    """Append-only manifest store under one directory.

    All methods are safe under concurrent writers: appends are atomic
    whole-line writes (``O_APPEND`` + a single ``os.write``), and reads
    tolerate a torn trailing line from a writer killed mid-append.
    """

    def __init__(self, directory: os.PathLike | str):
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / LEDGER_FILENAME

    # ------------------------------------------------------------------
    # Writing.
    # ------------------------------------------------------------------
    def append(self, manifest: RunManifest) -> RunManifest:
        """Durably append one manifest; returns it for chaining.

        The whole line is handed to the kernel in one ``write`` on an
        ``O_APPEND`` descriptor, so concurrent appenders (forked
        workers, overlapping CI jobs) can interleave manifests but
        never characters.
        """
        line = json.dumps(
            manifest.to_json(), sort_keys=True, separators=(",", ":")
        )
        data = (line + "\n").encode("utf-8")
        fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, data)
        finally:
            os.close(fd)
        return manifest

    # ------------------------------------------------------------------
    # Reading.
    # ------------------------------------------------------------------
    def read(self) -> LedgerReadResult:
        """Every manifest in append order; torn lines are counted, not raised."""
        manifests: List[RunManifest] = []
        skipped = 0
        try:
            # The handle is owned by the `with` below; the try only
            # brackets the open itself.
            stream = open(self.path, "r", encoding="utf-8")  # noqa: SIM115
        except FileNotFoundError:
            return LedgerReadResult()
        with stream:
            for line in stream:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                except ValueError:
                    skipped += 1
                    continue
                if not isinstance(payload, dict) or "run_id" not in payload:
                    skipped += 1
                    continue
                manifests.append(RunManifest.from_json(payload))
        return LedgerReadResult(manifests, skipped_lines=skipped)

    def select(
        self,
        kind: Optional[str] = None,
        target: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> LedgerReadResult:
        """Manifests filtered by kind/target/backend, append order kept."""
        result = self.read()
        picked = [
            manifest for manifest in result
            if (kind is None or manifest.kind == kind)
            and (target is None or manifest.target == target)
            and (backend is None or manifest.backend == backend)
        ]
        return LedgerReadResult(picked, skipped_lines=result.skipped_lines)

    def get(self, run_id: str) -> RunManifest:
        """The manifest whose run id matches *run_id* (prefixes allowed)."""
        matches = [
            manifest for manifest in self.read()
            if manifest.run_id == run_id or manifest.run_id.startswith(run_id)
        ]
        exact = [m for m in matches if m.run_id == run_id]
        if exact:
            return exact[-1]
        if not matches:
            raise UnknownRunId(f"no ledger run matches {run_id!r}")
        if len({m.run_id for m in matches}) > 1:
            candidates = ", ".join(sorted({m.run_id for m in matches})[:5])
            raise AmbiguousRunId(
                f"run id prefix {run_id!r} is ambiguous: {candidates}"
            )
        return matches[-1]

    def latest(
        self, kind: Optional[str] = None, target: Optional[str] = None
    ) -> Optional[RunManifest]:
        """The most recently appended (matching) manifest, or ``None``."""
        manifests = self.select(kind=kind, target=target)
        return manifests[-1] if manifests else None

    def __len__(self) -> int:
        return len(self.read())

    def __repr__(self) -> str:
        return f"RunLedger({str(self.directory)!r})"


def ledger_from_env(explicit: Optional[str] = None) -> Optional[RunLedger]:
    """A :class:`RunLedger` from *explicit* or ``$REPRO_LEDGER_DIR``."""
    directory = explicit or os.environ.get(LEDGER_ENV_VAR) or None
    return RunLedger(directory) if directory else None


# ----------------------------------------------------------------------
# Diffing and rendering.
# ----------------------------------------------------------------------
#: Configuration/identity fields ``diff_manifests`` compares for equality.
CONFIG_FIELDS = (
    "kind", "target", "scale", "backend", "policies",
    "model_fingerprint", "seed", "git_sha", "python", "platform",
)

#: Numeric cost fields ``diff_manifests`` reports deltas for.
NUMERIC_FIELDS = ("wall_s", "instructions", "ips", "energy_nj")


def diff_manifests(a: RunManifest, b: RunManifest) -> Dict[str, object]:
    """Per-field comparison of two manifests (``repro runs diff``).

    ``config`` holds only the identity fields that *differ* (an empty
    dict means the runs are comparable); ``metrics`` always carries the
    numeric cost fields with absolute and, where defined, relative
    deltas; ``phases`` diffs the union of both runs' phase timings.
    """
    diff: Dict[str, object] = {
        "a": a.run_id,
        "b": b.run_id,
        "config": {},
        "metrics": {},
        "phases": {},
    }
    for field in CONFIG_FIELDS:
        value_a, value_b = getattr(a, field), getattr(b, field)
        if value_a != value_b:
            diff["config"][field] = {"a": value_a, "b": value_b}
    for field in NUMERIC_FIELDS:
        value_a = float(getattr(a, field))
        value_b = float(getattr(b, field))
        entry: Dict[str, object] = {
            "a": value_a, "b": value_b, "delta": value_b - value_a,
        }
        if value_a:
            entry["delta_fraction"] = (value_b - value_a) / abs(value_a)
        diff["metrics"][field] = entry
    score_a = (a.fidelity or {}).get("score")
    score_b = (b.fidelity or {}).get("score")
    if score_a is not None or score_b is not None:
        entry = {"a": score_a, "b": score_b}
        if score_a is not None and score_b is not None:
            entry["delta"] = score_b - score_a
        diff["metrics"]["fidelity"] = entry
    for name in sorted(set(a.phases) | set(b.phases)):
        phase_a, phase_b = a.phases.get(name), b.phases.get(name)
        entry = {"a": phase_a, "b": phase_b}
        if phase_a is not None and phase_b is not None:
            entry["delta"] = phase_b - phase_a
        diff["phases"][name] = entry
    return diff


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def render_manifest(manifest: RunManifest) -> str:
    """One manifest as a readable field listing (``repro runs show``)."""
    lines = [f"run {manifest.run_id}"]
    rows = [
        ("created", manifest.created),
        ("kind", manifest.kind),
        ("command", manifest.command),
        ("target", manifest.target),
        ("scale", manifest.scale),
        ("backend", manifest.backend),
        ("policies", ", ".join(manifest.policies) or "-"),
        ("model", manifest.model_fingerprint),
        ("seed", manifest.seed),
        ("git sha", manifest.git_sha),
        ("python", manifest.python),
        ("platform", manifest.platform),
        ("wall_s", f"{manifest.wall_s:.3f}"),
        ("instructions", manifest.instructions),
        ("ips", f"{manifest.ips:,.0f}"),
        ("energy_nj", f"{manifest.energy_nj:,.1f}"),
    ]
    if manifest.fidelity:
        rows.append((
            "fidelity",
            f"{manifest.fidelity.get('score', 0):.3f} "
            f"over {manifest.fidelity.get('metrics', 0):g} metric(s)",
        ))
    for label, value in rows:
        lines.append(f"  {label:<13} {_fmt(value)}")
    for section, payload in (
        ("phases", {k: f"{v:.4f}s" for k, v in manifest.phases.items()}),
        ("cache", manifest.cache),
        ("cache_io", manifest.cache_io),
        ("pool", manifest.pool),
    ):
        if not payload:
            continue
        lines.append(f"  {section}:")
        for key in sorted(payload):
            lines.append(f"    {key:<24} {_fmt(payload[key])}")
    if manifest.extra:
        lines.append(f"  extra fields: {', '.join(sorted(manifest.extra))}")
    return "\n".join(lines)


def render_manifest_diff(diff: Dict[str, object]) -> str:
    """The ``repro runs diff`` text view of :func:`diff_manifests`."""
    lines = [f"diff {diff['a']} -> {diff['b']}"]
    config = diff.get("config") or {}
    if config:
        lines.append("  configuration differs:")
        for field in sorted(config):
            entry = config[field]
            lines.append(
                f"    {field:<18} {_fmt(entry['a'])} -> {_fmt(entry['b'])}"
            )
    else:
        lines.append("  configuration: identical")
    lines.append("  metrics:")
    for field, entry in (diff.get("metrics") or {}).items():
        rel = entry.get("delta_fraction")
        rel_text = "" if rel is None else f" ({rel:+.1%})"
        delta = entry.get("delta")
        delta_text = "" if delta is None else f" delta {delta:+g}"
        lines.append(
            f"    {field:<18} {_fmt(entry['a'])} -> {_fmt(entry['b'])}"
            f"{delta_text}{rel_text}"
        )
    phases = diff.get("phases") or {}
    if phases:
        lines.append("  phases (self seconds):")
        for name in sorted(phases):
            entry = phases[name]
            delta = entry.get("delta")
            delta_text = "" if delta is None else f" delta {delta:+.4f}s"
            lines.append(
                f"    {name:<24} {_fmt(entry['a'])} -> {_fmt(entry['b'])}"
                f"{delta_text}"
            )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Collection: build a manifest from a finished telemetry session.
# ----------------------------------------------------------------------
def _registry_total(registry, name: str) -> float:
    """Sum of every series value under one metric name."""
    return float(sum(series.value for series in registry.series(name)))


def fidelity_summary(metrics: Sequence) -> Optional[Dict[str, float]]:
    """Collapse per-metric fidelity scores into a manifest-sized dict.

    ``score`` is the fraction of scored metrics inside their paper
    tolerance band — the number the drift watchdog tracks across runs.
    """
    metrics = list(metrics)
    if not metrics:
        return None
    within = sum(1 for metric in metrics if metric.within)
    return {
        "score": within / len(metrics),
        "metrics": len(metrics),
        "mean_abs_error_pp": (
            sum(metric.abs_error for metric in metrics) / len(metrics)
        ),
    }


def collect_manifest(
    kind: str,
    command: str,
    target: str,
    telemetry,
    wall_s: float,
    runner_config: Optional[Dict[str, object]] = None,
    seed: Optional[int] = None,
    fidelity: Optional[Dict[str, float]] = None,
) -> RunManifest:
    """A manifest assembled from a finished (enabled) telemetry session.

    *runner_config* is a :meth:`SuiteRunner.describe` dict; the fields a
    manifest tracks (scale/backend/policies/model fingerprint) are
    lifted out of it, everything else is ignored.
    """
    from .summary import cache_io_stats, cache_stats, phase_totals, pool_stats

    registry = telemetry.registry
    instructions = int(_registry_total(registry, "runstats.dynamic_instructions"))
    config = runner_config or {}
    return RunManifest.new(
        kind=kind,
        command=command,
        target=target,
        scale=float(config.get("scale", 1.0)),
        backend=str(config.get("backend", "classic")),
        policies=[str(name) for name in config.get("policies", [])],
        model_fingerprint=config.get("model_fingerprint"),
        seed=seed,
        wall_s=wall_s,
        phases={
            total.name: total.self_time_s
            for total in phase_totals(telemetry.tracer.tree())
        },
        instructions=instructions,
        ips=instructions / wall_s if wall_s > 0 else 0.0,
        energy_nj=_registry_total(registry, "run.energy_nj"),
        fidelity=fidelity,
        cache=cache_stats(registry),
        cache_io=cache_io_stats(registry),
        pool=pool_stats(registry),
    )
