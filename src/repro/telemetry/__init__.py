"""Telemetry: metrics registry, span tracing, and structured run logs.

The observability layer for the profile -> compile -> execute pipeline.
Disabled by default and free when off; enable it around any workload::

    from repro.telemetry import telemetry_session
    from repro.telemetry.summary import render_summary

    with telemetry_session(trace_path="trace.jsonl") as telemetry:
        evaluate_policies(program)
        print(render_summary(telemetry))

See ``docs/observability.md`` for the full guide.
"""

from .drift import (
    DEFAULT_TOLERANCE,
    DEFAULT_WINDOW,
    DriftFinding,
    DriftReport,
    check_drift,
    render_drift_report,
)
from .export import export_chrome_trace, trace_summary, validate_chrome_trace
from .ledger import (
    LEDGER_SCHEMA_VERSION,
    RunLedger,
    RunManifest,
    collect_manifest,
    diff_manifests,
    fidelity_summary,
    git_revision,
    ledger_from_env,
    provenance,
    render_manifest,
    render_manifest_diff,
)
from .profiler import (
    DEFAULT_SAMPLE_EVERY,
    HotLoopProfiler,
    ProfileRow,
    ProfileTotals,
    reconcile,
    render_profile,
)
from .registry import Counter, Gauge, Histogram, MetricsRegistry, Timer
from .runtime import (
    Telemetry,
    get_telemetry,
    set_telemetry,
    telemetry_session,
)
from .sink import (
    JsonlSink,
    ListSink,
    TraceReadResult,
    decision_records,
    read_events,
    reconstruct_spans,
)
from .spans import Span, SpanNode, SpanTracer, build_tree
from .timeline import (
    DEFAULT_TIMELINE_WINDOW,
    TimelineTrack,
    WindowSample,
    is_level_series,
    render_track,
)
from .views import figure_observables, occupancy_view, slice_length_view
from .summary import (
    PhaseTotal,
    cache_hit_rate,
    cache_io_stats,
    cache_stats,
    hottest_spans,
    phase_totals,
    pool_stats,
    rcmp_breakdown,
    render_cache_stats,
    render_metrics,
    render_pool_stats,
    render_rcmp_breakdown,
    render_span_tree,
    render_summary,
)

__all__ = [
    "DEFAULT_SAMPLE_EVERY",
    "DEFAULT_TIMELINE_WINDOW",
    "DEFAULT_TOLERANCE",
    "DEFAULT_WINDOW",
    "DriftFinding",
    "DriftReport",
    "LEDGER_SCHEMA_VERSION",
    "RunLedger",
    "RunManifest",
    "cache_io_stats",
    "check_drift",
    "collect_manifest",
    "diff_manifests",
    "fidelity_summary",
    "git_revision",
    "ledger_from_env",
    "pool_stats",
    "provenance",
    "render_drift_report",
    "render_manifest",
    "render_manifest_diff",
    "render_pool_stats",
    "HotLoopProfiler",
    "ProfileRow",
    "ProfileTotals",
    "TimelineTrack",
    "TraceReadResult",
    "WindowSample",
    "export_chrome_trace",
    "figure_observables",
    "is_level_series",
    "occupancy_view",
    "reconcile",
    "render_profile",
    "render_track",
    "slice_length_view",
    "trace_summary",
    "validate_chrome_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Timer",
    "Telemetry",
    "get_telemetry",
    "set_telemetry",
    "telemetry_session",
    "JsonlSink",
    "ListSink",
    "decision_records",
    "read_events",
    "reconstruct_spans",
    "Span",
    "SpanNode",
    "SpanTracer",
    "build_tree",
    "PhaseTotal",
    "cache_hit_rate",
    "cache_stats",
    "hottest_spans",
    "phase_totals",
    "rcmp_breakdown",
    "render_cache_stats",
    "render_metrics",
    "render_rcmp_breakdown",
    "render_span_tree",
    "render_summary",
]
