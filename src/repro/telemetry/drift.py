"""Drift watchdog: gate the latest run against its ledger history.

``repro runs check`` is a CI soft gate over the
:mod:`repro.telemetry.ledger`: it compares the latest manifest against
the rolling window of *comparable* history (same kind, target, scale,
backend, and policy set — different configurations are different
populations and must never gate each other) and flags any watched
metric that moved past the configured tolerance from the window's
median:

* ``ips`` — instructions retired per wall-clock second (higher better);
* ``wall_s`` — end-to-end wall time (lower better);
* ``fidelity`` — fraction of fidelity metrics inside the paper
  tolerance band (higher better; only present on scored runs).

Medians, not means: a single noisy historical run (a cold cache, a
loaded CI runner) should not move the baseline.  Until ``min_history``
comparable runs exist the verdict is *skipped* — an empty or young
ledger passes, so the gate can be enabled before the history it needs
has accumulated.
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import Callable, Dict, List, Optional, Sequence

from .ledger import RunManifest

#: Rolling window of comparable history the median is taken over.
DEFAULT_WINDOW = 10

#: Relative tolerance before a move counts as drift (0.10 = 10%).
DEFAULT_TOLERANCE = 0.10

#: Comparable historical runs required before a metric is gated.
DEFAULT_MIN_HISTORY = 3

#: Verdict values.
OK = "ok"
IMPROVED = "improved"
REGRESSED = "regressed"
SKIPPED = "skipped"


@dataclasses.dataclass(frozen=True)
class WatchedMetric:
    """One manifest field the watchdog tracks across runs."""

    name: str
    higher_is_better: bool
    value_of: Callable[[RunManifest], Optional[float]]


def _fidelity_score(manifest: RunManifest) -> Optional[float]:
    if not manifest.fidelity:
        return None
    score = manifest.fidelity.get("score")
    return None if score is None else float(score)


#: The default watch list; ``repro runs check --metric`` subsets it.
WATCHED_METRICS: Dict[str, WatchedMetric] = {
    "ips": WatchedMetric(
        "ips", True, lambda m: float(m.ips) if m.ips else None
    ),
    "wall_s": WatchedMetric(
        "wall_s", False, lambda m: float(m.wall_s) if m.wall_s else None
    ),
    "fidelity": WatchedMetric("fidelity", True, _fidelity_score),
}


@dataclasses.dataclass(frozen=True)
class DriftFinding:
    """One watched metric's verdict for the latest run."""

    metric: str
    verdict: str
    latest: Optional[float]
    median: Optional[float]
    #: Signed relative move vs the median; positive = metric went up.
    delta_fraction: Optional[float]
    window: int
    note: str = ""

    def to_json(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class DriftReport:
    """Every finding from one latest-vs-history comparison."""

    latest: Optional[RunManifest]
    findings: List[DriftFinding]
    comparable_runs: int
    tolerance: float
    window: int

    @property
    def regressions(self) -> List[DriftFinding]:
        return [f for f in self.findings if f.verdict == REGRESSED]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_json(self) -> dict:
        return {
            "latest": None if self.latest is None else self.latest.run_id,
            "comparable_runs": self.comparable_runs,
            "tolerance": self.tolerance,
            "window": self.window,
            "ok": self.ok,
            "findings": [finding.to_json() for finding in self.findings],
        }


def comparable(latest: RunManifest, other: RunManifest) -> bool:
    """Whether *other* belongs to the same measurement population.

    Kind, target, scale, backend, and the policy set must all match —
    a fast-backend fig4 at scale 0.5 tells you nothing about a classic
    fig4 at scale 1.0.  Model fingerprint is deliberately *not* part of
    the key: a changed energy model that moves fidelity is exactly the
    drift the watchdog exists to flag.
    """
    return (
        other.kind == latest.kind
        and other.target == latest.target
        and other.scale == latest.scale
        and other.backend == latest.backend
        and list(other.policies) == list(latest.policies)
    )


def check_drift(
    manifests: Sequence[RunManifest],
    latest: Optional[RunManifest] = None,
    window: int = DEFAULT_WINDOW,
    tolerance: float = DEFAULT_TOLERANCE,
    min_history: int = DEFAULT_MIN_HISTORY,
    metrics: Optional[Sequence[str]] = None,
) -> DriftReport:
    """Compare *latest* (default: the last manifest) against its history.

    History is the up-to-*window* most recent comparable manifests
    preceding *latest* in append order.  A metric regresses when the
    latest value is worse than the window median by more than
    *tolerance* (relative); moves the other way are reported as
    improvements, and metrics without enough history (or absent from
    the latest run, e.g. fidelity on an unscored run) are skipped.
    """
    manifests = list(manifests)
    if latest is None:
        latest = manifests[-1] if manifests else None
    if latest is None:
        return DriftReport(
            latest=None,
            findings=[
                DriftFinding(name, SKIPPED, None, None, None, 0,
                             note="empty ledger")
                for name in (metrics or WATCHED_METRICS)
            ],
            comparable_runs=0, tolerance=tolerance, window=window,
        )

    watched = []
    for name in metrics or WATCHED_METRICS:
        if name not in WATCHED_METRICS:
            raise KeyError(
                f"unknown drift metric {name!r}; "
                f"choose from {', '.join(sorted(WATCHED_METRICS))}"
            )
        watched.append(WATCHED_METRICS[name])

    before_latest: List[RunManifest] = []
    for manifest in manifests:
        if manifest.run_id == latest.run_id:
            break
        before_latest.append(manifest)
    history = [m for m in before_latest if comparable(latest, m)][-window:]

    findings: List[DriftFinding] = []
    for metric in watched:
        latest_value = metric.value_of(latest)
        values = [
            value for value in (metric.value_of(m) for m in history)
            if value is not None
        ]
        if latest_value is None:
            findings.append(DriftFinding(
                metric.name, SKIPPED, None, None, None, len(values),
                note="metric absent from the latest run",
            ))
            continue
        if len(values) < min_history:
            findings.append(DriftFinding(
                metric.name, SKIPPED, latest_value, None, None, len(values),
                note=f"insufficient history ({len(values)} < {min_history})",
            ))
            continue
        median = statistics.median(values)
        if median == 0:
            findings.append(DriftFinding(
                metric.name, SKIPPED, latest_value, median, None, len(values),
                note="zero median — relative drift undefined",
            ))
            continue
        delta = (latest_value - median) / abs(median)
        worse = -delta if metric.higher_is_better else delta
        if worse > tolerance:
            verdict, note = REGRESSED, (
                f"{abs(delta):.1%} worse than the median of the last "
                f"{len(values)} comparable run(s) (tolerance {tolerance:.0%})"
            )
        elif -worse > tolerance:
            verdict, note = IMPROVED, (
                f"{abs(delta):.1%} better than the rolling median"
            )
        else:
            verdict, note = OK, ""
        findings.append(DriftFinding(
            metric.name, verdict, latest_value, median, delta, len(values),
            note=note,
        ))
    return DriftReport(
        latest=latest,
        findings=findings,
        comparable_runs=len(history),
        tolerance=tolerance,
        window=window,
    )


def render_drift_report(report: DriftReport) -> str:
    """The ``repro runs check`` text verdict, one line per metric."""
    if report.latest is None:
        return "drift check: ledger is empty — nothing to gate (pass)"
    lines = [
        f"drift check: run {report.latest.run_id} "
        f"({report.latest.kind} {report.latest.target}, "
        f"backend {report.latest.backend}, scale {report.latest.scale:g}) "
        f"vs {report.comparable_runs} comparable run(s), "
        f"tolerance {report.tolerance:.0%}"
    ]
    for finding in report.findings:
        if finding.latest is None and finding.median is None:
            detail = ""
        elif finding.median is None:
            detail = f" latest={finding.latest:g}"
        else:
            detail = (
                f" latest={finding.latest:g} median={finding.median:g}"
                f" ({finding.delta_fraction:+.1%})"
            )
        note = f" — {finding.note}" if finding.note else ""
        lines.append(
            f"  {finding.metric:<10} {finding.verdict.upper():<10}{detail}{note}"
        )
    lines.append(
        "verdict: " + ("PASS" if report.ok
                       else f"FAIL ({len(report.regressions)} regression(s))")
    )
    return "\n".join(lines)
