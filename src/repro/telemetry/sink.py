"""Structured event sink: JSONL out, parsed events and span trees back.

Every telemetry event is one JSON object per line.  Three event shapes
exist today:

* ``span_open`` / ``span_close`` — emitted by the tracer around every
  pipeline phase;
* ``rcmp`` — one record per dynamic RCMP with the scheduler's verdict
  (fired / skipped / fallback), the load's residence level, the slice
  length, and checkpoint availability;
* anything else instrumented code passes to ``Telemetry.event``.

:func:`read_events` parses a file back into dicts and
:func:`reconstruct_spans` rebuilds the span forest, so a trace survives
the round trip ``emit -> JSONL -> parse -> tree`` losslessly.
"""

from __future__ import annotations

import json
import os
import warnings
from typing import IO, Dict, Iterable, List, Optional, Union

from .spans import Span, SpanNode, build_tree


def _jsonable(value):
    """Coerce non-JSON values (enums, tuples, paths) to something stable."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    enum_value = getattr(value, "value", None)
    if isinstance(enum_value, (str, int, float)):
        return enum_value
    return str(value)


class JsonlSink:
    """Writes one JSON object per line to a path or open stream."""

    def __init__(self, target: Union[str, IO[str]]):
        if hasattr(target, "write"):
            self._stream: IO[str] = target
            self._owns_stream = False
            self.path: Optional[str] = getattr(target, "name", None)
        else:
            # Held for the sink's lifetime; released in close().
            self._stream = open(target, "w", encoding="utf-8")  # noqa: SIM115
            self._owns_stream = True
            self.path = str(target)
        self.events_written = 0

    def emit(self, event: Dict[str, object]) -> None:
        json.dump(_jsonable(event), self._stream, separators=(",", ":"))
        self._stream.write("\n")
        self.events_written += 1

    def close(self) -> None:
        """Flush and fsync so a killed process leaves a loadable trace.

        The fault-injection scenarios (and any ctrl-C'd run) rely on
        the trace surviving up to at most one torn final line, which
        :func:`read_events` tolerates on the way back in.
        """
        self._stream.flush()
        try:
            os.fsync(self._stream.fileno())
        except (OSError, ValueError, AttributeError):
            pass  # in-memory streams (StringIO) have no file descriptor
        if self._owns_stream:
            self._stream.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class ListSink:
    """In-memory sink for tests and the ``repro stats`` summary path."""

    def __init__(self):
        self.events: List[Dict[str, object]] = []

    def emit(self, event: Dict[str, object]) -> None:
        self.events.append(_jsonable(event))

    def close(self) -> None:
        pass


class TraceReadResult(List[Dict[str, object]]):
    """The parsed events of a trace, plus how many lines were skipped.

    Behaves exactly like the plain list :func:`read_events` used to
    return; ``skipped_lines`` counts undecodable lines (normally the
    torn final line of a killed run's trace).
    """

    def __init__(self, events=(), skipped_lines: int = 0):
        super().__init__(events)
        self.skipped_lines = skipped_lines


def read_events(path: str) -> TraceReadResult:
    """Parse a JSONL trace file back into event dicts.

    A line that does not decode as JSON is skipped (counted in the
    result's ``skipped_lines`` and reported via :mod:`warnings`) rather
    than raised: a process killed mid-:meth:`JsonlSink.emit` leaves at
    most one torn line, and the rest of the trace is still good.
    """
    events = []
    skipped = 0
    with open(path, "r", encoding="utf-8") as stream:
        for number, line in enumerate(stream, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                skipped += 1
                warnings.warn(
                    f"{path}:{number}: skipping undecodable trace line "
                    f"(torn write from a killed run?)",
                    stacklevel=2,
                )
                continue
            if isinstance(event, dict):
                events.append(event)
            else:
                skipped += 1
                warnings.warn(
                    f"{path}:{number}: skipping non-object trace line",
                    stacklevel=2,
                )
    return TraceReadResult(events, skipped_lines=skipped)


def reconstruct_spans(events: Iterable[Dict[str, object]]) -> List[SpanNode]:
    """Rebuild the span forest from span_open/span_close events.

    A span_open without a matching span_close (truncated trace) is kept
    as an open span with ``end_s=None`` so nothing silently disappears.
    """
    spans: Dict[int, Span] = {}
    for event in events:
        kind = event.get("type")
        if kind == "span_open":
            span_id = int(event["span"])
            parent = event.get("parent")
            spans[span_id] = Span(
                span_id=span_id,
                parent_id=None if parent is None else int(parent),
                name=str(event["name"]),
                attrs=dict(event.get("attrs") or {}),
                start_s=float(event["t"]),
            )
        elif kind == "span_close":
            span = spans.get(int(event["span"]))
            if span is None:
                continue
            span.end_s = float(event["t"])
            span.status = str(event.get("status", "ok"))
            span.attrs.update(event.get("attrs") or {})
    return build_tree(spans.values())


def decision_records(events: Iterable[Dict[str, object]]) -> List[Dict[str, object]]:
    """The per-RCMP decision events of a parsed trace."""
    return [event for event in events if event.get("type") == "rcmp"]
