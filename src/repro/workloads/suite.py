"""The reproduced 33-benchmark suite (paper Table 2).

Every benchmark of the paper's evaluation is reproduced as a composite
kernel whose parameters are calibrated against the paper's per-benchmark
characterisation: the Table 5 service-level profile of swapped loads,
the Figure 6 slice-length range, the Figure 7 non-recomputable-majority
flag, and the Figure 8 locality outliers.  The 11 *responsive*
benchmarks (>10% EDP-gain potential) get individually tuned parameter
sets; the remaining 22 instantiate three archetypes — FP compute-bound,
integer/control-bound, and mildly memory-sensitive — matching the
paper's finding that they "did not have many energy-hungry loads".

Calibration constants assume the harness machine
(:func:`repro.machine.config.default_config`): L1 = 128 words,
L2 = 1024 words.  Region sizes of 128/512-1024/4096 words therefore pin
reads to L1/L2/memory respectively.

Known deviation (documented in EXPERIMENTS.md): because this
reproduction only swaps loads whose recomputation is *verified* correct
under the history table's latest-value semantics, memory-resident
swapped loads keep their value stable between region rewrites, so their
measured value locality is higher than the paper's Figure 8 reports for
its (unverified) slice selection.
"""

from __future__ import annotations

from typing import Optional

from ..isa.program import Program
from .base import CalibrationTargets, WorkloadRegistry, WorkloadSpec
from .kernels.composite import KernelParams, RegionSpec, build_composite

REGISTRY = WorkloadRegistry()

#: Canonical short names of the paper's figures.
RESPONSIVE = ("mcf", "sx", "cg", "is", "ca", "fs", "fe", "rt", "bp", "bfs", "sr")


def _register(
    name: str,
    suite: str,
    description: str,
    params: KernelParams,
    responsive: bool = False,
    calibration: Optional[CalibrationTargets] = None,
) -> WorkloadSpec:
    def build(scale: float, _name=name, _params=params) -> Program:
        return build_composite(_name, _params, scale)

    return REGISTRY.register(
        WorkloadSpec(
            name=name,
            suite=suite,
            description=description,
            build=build,
            responsive=responsive,
            calibration=calibration,
        )
    )


# ----------------------------------------------------------------------
# The 11 responsive benchmarks.
# ----------------------------------------------------------------------
_register(
    "mcf", "SPEC",
    "Network-simplex flavour: pointer chasing over read-only arcs plus "
    "phase-rewritten node potentials whose scattered reads miss to memory.",
    KernelParams(
        phases=8,
        region_specs=(
            RegionSpec(words=4096, sites=6, repeats=36, chain_length=5,
                       nc_leaves=True, refill_every=8),
            RegionSpec(words=4096, sites=2, repeats=20, chain_length=14,
                       nc_leaves=True, refill_every=8),
            RegionSpec(words=4096, sites=1, repeats=10, chain_length=1,
                       nc_leaves=False, refill_every=999, fill_constant=77),
            RegionSpec(words=128, sites=2, repeats=12, chain_length=4,
                       nc_leaves=True, refill_every=1),
        ),
        input_words=2048,
        chase_nodes=2048,
        chase_steps=48,
    ),
    responsive=True,
    calibration=CalibrationTargets(
        swapped_levels=(12.0, 11.0, 77.0), max_slice_length=40,
        nonrecomputable_majority=True, high_value_locality=False,
        edp_gain_compiler_percent=65.0,
    ),
)

_register(
    "sx", "SPEC",
    "sphinx3 flavour: acoustic-score tables mostly hot in L1 with a "
    "large senone pool occasionally touched, FP scoring in between.",
    KernelParams(
        phases=8,
        region_specs=(
            RegionSpec(words=4096, sites=2, repeats=12, chain_length=6,
                       nc_leaves=True, refill_every=8),
            RegionSpec(words=4096, sites=1, repeats=10, chain_length=27,
                       nc_leaves=True, refill_every=8),
            RegionSpec(words=128, sites=10, repeats=20, chain_length=6,
                       nc_leaves=True, refill_every=1),
        ),
        input_words=2048,
        compute_iterations=8,
        compute_ops=4,
    ),
    responsive=True,
    calibration=CalibrationTargets(
        swapped_levels=(85.0, 1.0, 14.0), max_slice_length=70,
        nonrecomputable_majority=True, high_value_locality=False,
        edp_gain_compiler_percent=22.0,
    ),
)

_register(
    "cg", "NAS",
    "Conjugate-gradient flavour: partition sums resident in L1, the "
    "sparse matrix streamed read-only, occasional far-row reloads.",
    KernelParams(
        phases=8,
        region_specs=(
            RegionSpec(words=4096, sites=2, repeats=10, chain_length=7,
                       nc_leaves=True, refill_every=8),
            RegionSpec(words=4096, sites=1, repeats=8, chain_length=22,
                       nc_leaves=True, refill_every=8),
            RegionSpec(words=128, sites=12, repeats=14, chain_length=7,
                       nc_leaves=True, refill_every=1),
        ),
        input_words=2048,
        stream_reads=16,
        compute_iterations=12,
        compute_ops=4,
    ),
    responsive=True,
    calibration=CalibrationTargets(
        swapped_levels=(87.5, 0.2, 12.3), max_slice_length=60,
        nonrecomputable_majority=True, high_value_locality=False,
        edp_gain_compiler_percent=28.0,
    ),
)

_register(
    "is", "NAS",
    "Integer-sort flavour: bucket arrays rewritten per ranking pass and "
    "read back key-scattered; very short, register-seeded slices.",
    KernelParams(
        phases=8,
        region_specs=(
            RegionSpec(words=2048, sites=8, repeats=72, chain_length=1,
                       nc_leaves=False, refill_every=64, fill_constant=21930,
                       hot_mask=63, cold_every=3),
            RegionSpec(words=512, sites=3, repeats=24, chain_length=2,
                       nc_leaves=False, refill_every=2),
            RegionSpec(words=512, sites=2, repeats=10, chain_length=7,
                       nc_leaves=True, refill_every=4),
        ),
        input_words=1024,
        stream_reads=8,
    ),
    responsive=True,
    calibration=CalibrationTargets(
        swapped_levels=(49.6, 19.3, 31.1), max_slice_length=25,
        nonrecomputable_majority=False, high_value_locality=False,
        edp_gain_compiler_percent=87.0,
    ),
)

_register(
    "ca", "PARSEC",
    "canneal flavour: random element swaps over a large routing cost "
    "table rewritten per temperature step; reads roam far.",
    KernelParams(
        phases=9,
        region_specs=(
            RegionSpec(words=4096, sites=6, repeats=20, chain_length=3,
                       nc_leaves=True, refill_every=5),
            RegionSpec(words=4096, sites=2, repeats=16, chain_length=13,
                       nc_leaves=True, refill_every=5),
            RegionSpec(words=128, sites=3, repeats=10, chain_length=3,
                       nc_leaves=True, refill_every=1),
        ),
        input_words=2048,
        chase_nodes=1024,
        chase_steps=32,
    ),
    responsive=True,
    calibration=CalibrationTargets(
        swapped_levels=(27.9, 7.5, 64.6), max_slice_length=25,
        nonrecomputable_majority=True, high_value_locality=False,
        edp_gain_compiler_percent=38.0,
    ),
)

_register(
    "fs", "PARSEC",
    "facesim flavour: per-frame state tables half hot, half spilling to "
    "memory, with FP integration between accesses.",
    KernelParams(
        phases=8,
        region_specs=(
            RegionSpec(words=4096, sites=4, repeats=16, chain_length=5,
                       nc_leaves=True, refill_every=8),
            RegionSpec(words=4096, sites=1, repeats=12, chain_length=20,
                       nc_leaves=True, refill_every=8),
            RegionSpec(words=128, sites=8, repeats=14, chain_length=5,
                       nc_leaves=True, refill_every=1),
        ),
        input_words=2048,
        compute_iterations=10,
        compute_ops=5,
    ),
    responsive=True,
    calibration=CalibrationTargets(
        swapped_levels=(56.5, 1.9, 41.6), max_slice_length=50,
        nonrecomputable_majority=True, high_value_locality=False,
        edp_gain_compiler_percent=30.0,
    ),
)

_register(
    "fe", "PARSEC",
    "ferret flavour: similarity tables across three working-set tiers "
    "(hot rank cache, mid-size index, cold archive).",
    KernelParams(
        phases=8,
        region_specs=(
            RegionSpec(words=4096, sites=3, repeats=10, chain_length=5,
                       nc_leaves=True, refill_every=8),
            RegionSpec(words=1024, sites=2, repeats=8, chain_length=5,
                       nc_leaves=True, refill_every=4),
            RegionSpec(words=1024, sites=1, repeats=6, chain_length=16,
                       nc_leaves=True, refill_every=4),
            RegionSpec(words=128, sites=7, repeats=12, chain_length=5,
                       nc_leaves=True, refill_every=1),
        ),
        input_words=2048,
        compute_iterations=10,
        compute_ops=4,
    ),
    responsive=True,
    calibration=CalibrationTargets(
        swapped_levels=(63.3, 10.1, 26.7), max_slice_length=40,
        nonrecomputable_majority=True, high_value_locality=False,
        edp_gain_compiler_percent=16.0,
    ),
)

_register(
    "rt", "PARSEC",
    "raytrace flavour: BVH-node shading values almost entirely cache "
    "resident, rare cold-geometry fetches, heavy FP shading.",
    KernelParams(
        phases=8,
        region_specs=(
            RegionSpec(words=4096, sites=1, repeats=12, chain_length=3,
                       nc_leaves=True, refill_every=4),
            RegionSpec(words=4096, sites=1, repeats=6, chain_length=10,
                       nc_leaves=True, refill_every=4),
            RegionSpec(words=4096, sites=1, repeats=6, chain_length=1,
                       nc_leaves=False, refill_every=999, fill_constant=4242),
            RegionSpec(words=128, sites=12, repeats=16, chain_length=3,
                       nc_leaves=True, refill_every=1),
        ),
        input_words=2048,
        compute_iterations=24,
        compute_ops=5,
    ),
    responsive=True,
    calibration=CalibrationTargets(
        swapped_levels=(93.0, 0.8, 6.3), max_slice_length=25,
        nonrecomputable_majority=True, high_value_locality=False,
        edp_gain_compiler_percent=15.0,
    ),
)

_register(
    "bp", "Rodinia",
    "backpropagation flavour: layer activations rewritten per epoch, "
    "weight deltas re-read partly from memory; short slices.",
    KernelParams(
        phases=8,
        region_specs=(
            RegionSpec(words=4096, sites=3, repeats=16, chain_length=3,
                       nc_leaves=True, refill_every=8),
            RegionSpec(words=4096, sites=1, repeats=10, chain_length=9,
                       nc_leaves=True, refill_every=8),
            RegionSpec(words=128, sites=7, repeats=12, chain_length=3,
                       nc_leaves=True, refill_every=1),
        ),
        input_words=2048,
        compute_iterations=8,
        compute_ops=4,
    ),
    responsive=True,
    calibration=CalibrationTargets(
        swapped_levels=(72.5, 0.0, 27.5), max_slice_length=20,
        nonrecomputable_majority=True, high_value_locality=False,
        edp_gain_compiler_percent=30.0,
    ),
)

_register(
    "bfs", "Rodinia",
    "breadth-first-search flavour: frontier flags flipped per level and "
    "re-checked immediately; one-instruction register-seeded slices.",
    KernelParams(
        phases=10,
        region_specs=(
            RegionSpec(words=2048, sites=1, repeats=5, chain_length=1,
                       nc_leaves=False, refill_every=5, fill_constant=1),
            RegionSpec(words=64, sites=12, repeats=64, chain_length=1,
                       nc_leaves=False, refill_every=1, fill_constant=1),
            RegionSpec(words=64, sites=2, repeats=32, chain_length=2,
                       nc_leaves=False, refill_every=1),
        ),
        input_words=1024,
        stream_reads=4,
    ),
    responsive=True,
    calibration=CalibrationTargets(
        swapped_levels=(98.4, 0.0, 1.6), max_slice_length=5,
        nonrecomputable_majority=False, high_value_locality=True,
        edp_gain_compiler_percent=18.5,
    ),
)

_register(
    "sr", "Rodinia",
    "srad flavour: stencil coefficient tables nearly always in L1, "
    "mid-length memory-seeded slices - the case where always-firing "
    "recomputation degrades EDP.",
    KernelParams(
        phases=10,
        region_specs=(
            RegionSpec(words=4096, sites=1, repeats=12, chain_length=6,
                       nc_leaves=True, refill_every=5),
            RegionSpec(words=128, sites=10, repeats=20, chain_length=6,
                       nc_leaves=True, refill_every=1),
        ),
        input_words=1024,
        compute_iterations=8,
        compute_ops=4,
    ),
    responsive=True,
    calibration=CalibrationTargets(
        swapped_levels=(93.7, 0.0, 6.3), max_slice_length=7,
        nonrecomputable_majority=True, high_value_locality=True,
        edp_gain_compiler_percent=-7.0,
    ),
)

# ----------------------------------------------------------------------
# The 22 benchmarks that "did not benefit much" (paper section 5.1).
# ----------------------------------------------------------------------
def _fp_compute(name: str, suite: str, flavour: str, phases: int = 6,
                compute: int = 96, spill_chain: int = 4) -> None:
    """FP compute-bound archetype: tiny L1-resident spill traffic only."""
    _register(
        name, suite,
        f"{flavour}: FP compute-bound; only small L1-resident spills are "
        f"swappable, so recomputation has little to harvest.",
        KernelParams(
            phases=phases,
            spill_iterations=12,
            spill_chain_length=spill_chain,
            spill_gap_reads=8,
            spill_region_words=256,
            input_words=1024,
            compute_iterations=compute,
            compute_ops=6,
        ),
    )


def _int_control(name: str, suite: str, flavour: str, phases: int = 6,
                 chase: int = 96) -> None:
    """Integer/control-bound archetype: hot chases, tiny spills."""
    _register(
        name, suite,
        f"{flavour}: integer/control-bound; loads are cheap L1 hits and "
        f"slices cost more than they save.",
        KernelParams(
            phases=phases,
            spill_iterations=10,
            spill_chain_length=5,
            spill_gap_reads=4,
            spill_region_words=128,
            input_words=1024,
            chase_nodes=128,
            chase_steps=chase,
            compute_iterations=32,
            compute_ops=4,
            use_fp=False,
        ),
    )


def _mild_memory(name: str, suite: str, flavour: str, phases: int = 6,
                 words: int = 2048, sites: int = 3, repeats: int = 1) -> None:
    """Mildly memory-sensitive archetype: ~5% gain class."""
    _register(
        name, suite,
        f"{flavour}: moderate L2-resident table traffic; a few percent "
        f"of EDP is recoverable.",
        KernelParams(
            phases=phases,
            region_specs=(
                # Filled once (reset-style buffer): no recurring refill
                # tax, single-instruction slices, modest recoverable EDP.
                RegionSpec(words=words, sites=sites, repeats=repeats,
                           chain_length=1, nc_leaves=False,
                           refill_every=999, fill_constant=24043),
            ),
            input_words=256,
            stream_reads=12,
            compute_iterations=160,
            compute_ops=5,
        ),
    )


# SPEC CPU2006.
_int_control("perlbench", "SPEC", "interpreter dispatch", phases=7, chase=112)
_int_control("gobmk", "SPEC", "game-tree search", chase=128)
_fp_compute("calculix", "SPEC", "finite-element solver", phases=5, compute=108)
_fp_compute("GemsFDTD", "SPEC", "finite-difference time domain", compute=128)
_mild_memory("libquantum", "SPEC", "quantum register simulation", repeats=2)
_mild_memory("soplex", "SPEC", "simplex LP solver", words=1024, repeats=2)
_fp_compute("lbm", "SPEC", "lattice-Boltzmann streaming", compute=112)
_int_control("omnetpp", "SPEC", "discrete-event simulation", phases=8, chase=88)

# NAS.
_mild_memory("ft", "NAS", "3-D FFT transpose traffic", words=1024, sites=3)
_mild_memory("mg", "NAS", "multigrid restriction/prolongation", words=1024,
             sites=3, repeats=2)

# PARSEC.
_fp_compute("blackscholes", "PARSEC", "option pricing", compute=144)
_int_control("x264", "PARSEC", "motion estimation", chase=112)
_int_control("dedup", "PARSEC", "chunk hashing pipeline", phases=5, chase=104)
_int_control("freqmine", "PARSEC", "frequent-itemset mining", phases=7, chase=80)
_fp_compute("fluidanimate", "PARSEC", "SPH fluid simulation", phases=7, compute=88, spill_chain=5)
_mild_memory("streamcluster", "PARSEC", "online clustering", words=1024,
             sites=3, repeats=1)
_fp_compute("swaptions", "PARSEC", "HJM swaption pricing", compute=160)
_fp_compute("bodytrack", "PARSEC", "particle-filter body tracking", phases=5, compute=120, spill_chain=3)

# Rodinia.
_mild_memory("kmeans", "Rodinia", "k-means assignment sweeps", words=1024,
             sites=3, repeats=1)
_mild_memory("nw", "Rodinia", "Needleman-Wunsch wavefront", words=1024,
             sites=3, repeats=1)
_fp_compute("particlefilter", "Rodinia", "particle filter", compute=128)
_mild_memory("hotspot", "Rodinia", "thermal grid relaxation", words=1024,
             sites=3, repeats=2)


def get(name: str) -> WorkloadSpec:
    """Look up one benchmark by name."""
    return REGISTRY.get(name)


def responsive_specs():
    """The 11 focus benchmarks, in the paper's figure order."""
    return [REGISTRY.get(name) for name in RESPONSIVE]


def all_specs():
    """All 33 benchmarks."""
    return list(REGISTRY)
