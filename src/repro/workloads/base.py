"""Workload abstractions: specs, scales, and the suite registry protocol.

Each paper benchmark is reproduced as a synthetic kernel whose four
evaluation-driving observables are calibrated against the paper's
characterisation:

1. the service-level profile of swapped loads (Table 5),
2. the RSlice length distribution (Figure 6),
3. the share of slices with non-recomputable leaf inputs (Figure 7),
4. the value locality of swapped loads (Figure 8).

A :class:`WorkloadSpec` bundles the builder with that calibration
metadata so tests can assert the kernels land where they claim to.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Tuple

from ..isa.program import Program

#: Named scale presets: fraction of the harness-sized dynamic work.
SCALE_TINY = 0.25  # unit/integration tests
SCALE_SMALL = 1.0  # the evaluation harness default
SCALE_LARGE = 3.0  # longer, lower-variance runs


@dataclasses.dataclass(frozen=True)
class CalibrationTargets:
    """Paper-reported observables this kernel is calibrated towards.

    ``swapped_levels`` is the (L1, L2, MEM) percentage split of Table 5
    (Compiler policy); ``max_slice_length`` bounds Figure 6's x-axis;
    ``nonrecomputable_majority`` is Figure 7's "w/ nc" majority flag;
    ``high_value_locality`` flags the Figure 8 outliers (bfs, sr).
    """

    swapped_levels: Tuple[float, float, float]
    max_slice_length: int
    nonrecomputable_majority: bool
    high_value_locality: bool
    edp_gain_compiler_percent: Optional[float] = None


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """One benchmark of the reproduced suite."""

    name: str
    suite: str  # SPEC / NAS / PARSEC / Rodinia
    description: str
    build: Callable[[float], Program]
    responsive: bool = False  # in the paper's 11-benchmark focus set
    calibration: Optional[CalibrationTargets] = None

    def instantiate(self, scale: float = SCALE_SMALL) -> Program:
        """Build the kernel at *scale* (1.0 = harness size)."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        return self.build(scale)


class WorkloadRegistry:
    """Name -> spec registry with suite filtering."""

    def __init__(self) -> None:
        self._specs: Dict[str, WorkloadSpec] = {}

    def register(self, spec: WorkloadSpec) -> WorkloadSpec:
        if spec.name in self._specs:
            raise ValueError(f"duplicate workload {spec.name!r}")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> WorkloadSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(
                f"unknown workload {name!r}; known: {sorted(self._specs)}"
            ) from None

    def names(self, suite: Optional[str] = None, responsive_only: bool = False):
        """All registered names, optionally filtered."""
        return [
            name
            for name, spec in sorted(self._specs.items())
            if (suite is None or spec.suite == suite)
            and (not responsive_only or spec.responsive)
        ]

    def __iter__(self):
        return iter(sorted(self._specs.values(), key=lambda spec: spec.name))

    def __len__(self) -> int:
        return len(self._specs)
