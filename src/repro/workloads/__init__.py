"""The reproduced benchmark suite (paper Table 2) and its pattern library."""

from .base import (
    SCALE_LARGE,
    SCALE_SMALL,
    SCALE_TINY,
    CalibrationTargets,
    WorkloadRegistry,
    WorkloadSpec,
)
from .kernels.composite import KernelParams, RegionSpec, build_composite
from .suite import REGISTRY, RESPONSIVE, all_specs, get, responsive_specs

__all__ = [
    "CalibrationTargets",
    "KernelParams",
    "REGISTRY",
    "RESPONSIVE",
    "RegionSpec",
    "SCALE_LARGE",
    "SCALE_SMALL",
    "SCALE_TINY",
    "WorkloadRegistry",
    "WorkloadSpec",
    "all_specs",
    "build_composite",
    "get",
    "responsive_specs",
]
