"""Reusable kernel-pattern emitters.

Every reproduced benchmark is composed from a handful of access/compute
patterns, each of which is *provably recomputable* (or deliberately
not), so the amnesic compiler's strict replay validation accepts exactly
the loads we intend it to swap:

* **phase-constant region** — an outer phase recomputes a value through
  a dependence chain and rewrites a whole region with it; scattered
  reads of the region are swappable (their producer chain re-executes
  exactly), and the region/cache size ratio dials the L1/L2/MEM service
  profile of Table 5.
* **spill-reload** — a value is produced, spilled, and reloaded in
  lockstep within one iteration, with a tunable eviction gap between
  spill and reload.
* **background** — read-only streams, pointer chases, and pure-compute
  blocks: *unswappable* work that sets the baseline energy mix and
  provides cache pressure.

The emitters write straight-line/loop code through the
:class:`~repro.isa.builder.ProgramBuilder` DSL and take their scratch
registers explicitly so composite kernels can budget the 31 usable
architectural registers.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from ...isa.builder import ProgramBuilder
from ...isa.opcodes import Opcode
from ...isa.operands import Reg

#: LCG constants (numerical-recipes flavour); arithmetic wraps in int64.
LCG_MUL = 1103515245
LCG_ADD = 12345


@dataclasses.dataclass
class PatternRegs:
    """The shared scratch registers a composite kernel hands to emitters."""

    lcg: Reg  # pseudo-random address state
    addr: Reg  # effective address scratch
    value: Reg  # loaded/produced value scratch
    sink: Reg  # accumulation sink (keeps loads live)
    mask: Reg  # computed mask scratch
    cond: Reg  # comparison scratch
    chain: Reg  # value-chain accumulator
    seed: Reg  # value-chain seed

    @classmethod
    def allocate(cls, builder: ProgramBuilder) -> "PatternRegs":
        names = ["lcg", "addr", "value", "sink", "mask", "cond", "chain", "seed"]
        regs = builder.regs(*[f"_pat_{n}" for n in names])
        return cls(*regs)


# ----------------------------------------------------------------------
# Value chains: the future slice bodies.
# ----------------------------------------------------------------------
#: Opcode/immediate steps the chain cycles through.  All integer, all
#: bijective enough to keep values varied, none that can fault.
_CHAIN_STEPS = (
    (Opcode.MUL, 37),
    (Opcode.ADD, 1013904223),
    (Opcode.XOR, 0x5DEECE66D),
    (Opcode.ADD, 11),
    (Opcode.MUL, 25214903917),
    (Opcode.XOR, 0x2545F4914F6CDD1D),
)


def emit_value_chain(
    builder: ProgramBuilder,
    regs: PatternRegs,
    length: int,
) -> None:
    """Compute ``chain = f(seed)`` through *length* dependent operations.

    The chain becomes the recomputation slice of any load that reads a
    value derived from ``regs.chain``; *length* therefore dials the
    Figure 6 slice-length distribution.  Whether the resulting slice has
    non-recomputable (Hist-checkpointed) leaf inputs is decided by how
    the caller *seeds* it: a loop-counter-derived seed stays live (the
    slice re-derives everything from registers), while a seed loaded
    from memory becomes a checkpoint-load leaf — see
    :func:`emit_seed_from_memory`, the Figure 7 knob.
    """
    if length < 1:
        raise ValueError("chain length must be >= 1")
    builder.op(Opcode.MOV, regs.chain, regs.seed)
    for step in range(length - 1):
        opcode, immediate = _CHAIN_STEPS[step % len(_CHAIN_STEPS)]
        builder.op(opcode, regs.chain, regs.chain, immediate)


def emit_seed_from_memory(
    builder: ProgramBuilder,
    regs: PatternRegs,
    source: "Region",
    index_reg: Reg,
) -> None:
    """Load ``regs.seed`` from a read-only region, indexed by *index_reg*.

    The seed load cannot itself be swapped (it reads program input), so
    it survives in the binary as the REC-checkpointed source of every
    slice built over the chain — producing the paper's "w/ nc" slices
    whose leaf inputs live in the history table (Figure 7).
    """
    builder.op(Opcode.AND, regs.addr, index_reg, source.mask)
    builder.add(regs.addr, regs.addr, source.base_reg)
    builder.ld(regs.seed, regs.addr)


# ----------------------------------------------------------------------
# Phase-constant regions.
# ----------------------------------------------------------------------
@dataclasses.dataclass
class Region:
    """A memory region rewritten wholesale by its owning phase loop."""

    base: int
    words: int  # power of two
    base_reg: Reg

    @property
    def mask(self) -> int:
        return self.words - 1


def allocate_region(builder: ProgramBuilder, name: str, words: int) -> Region:
    """Reserve a power-of-two *words* region and load its base register."""
    if words & (words - 1):
        raise ValueError("region size must be a power of two")
    base = builder.reserve(words)
    base_reg = builder.reg(f"_region_{name}")
    builder.li(base_reg, base)
    return Region(base=base, words=words, base_reg=base_reg)


def emit_region_fill(
    builder: ProgramBuilder,
    regs: PatternRegs,
    region: Region,
    counter: str,
) -> None:
    """Overwrite every word of *region* with the current chain value."""
    with builder.loop(counter, 0, region.words) as index:
        builder.add(regs.addr, region.base_reg, index)
        builder.st(regs.chain, regs.addr)


def emit_constant_fill(
    builder: ProgramBuilder,
    regs: PatternRegs,
    region: Region,
    constant: int,
    counter: str,
) -> None:
    """Overwrite every word of *region* with an immediate.

    Loads of the region then recompute through a single ``LI`` — the
    shortest possible slice, with no history-table dependence (bfs-style
    visited flags, zeroed buffers).
    """
    from ...isa.operands import Imm

    with builder.loop(counter, 0, region.words) as index:
        builder.add(regs.addr, region.base_reg, index)
        builder.st(Imm(constant), regs.addr)


def emit_scatter_reads(
    builder: ProgramBuilder,
    regs: PatternRegs,
    region: Region,
    sites: int,
    repeats: int,
    counter: str,
    hot_mask: Optional[int] = None,
    cold_every: int = 0,
) -> None:
    """Emit *sites* static loads, each executed *repeats* times per call.

    Addresses are pseudo-random within the region.  With *hot_mask* the
    reads normally stay inside a small hot subset (L1-resident) and
    every *cold_every*-th repeat roams the full region — the per-load
    service-level mixing observed for the paper's benchmarks (Table 5
    shows the same static loads serviced by L1, L2 and memory).
    """
    if hot_mask is not None and cold_every < 1:
        raise ValueError("cold_every must be >= 1 when hot_mask is used")
    with builder.loop(counter, 0, repeats) as repeat:
        for _site in range(sites):
            builder.mul(regs.lcg, regs.lcg, LCG_MUL)
            builder.add(regs.lcg, regs.lcg, LCG_ADD)
            if hot_mask is None:
                builder.op(Opcode.AND, regs.mask, regs.lcg, region.mask)
            else:
                # mask = cold ? full : hot, branch-free.
                builder.op(Opcode.REM, regs.cond, repeat, cold_every)
                builder.op(Opcode.SEQ, regs.cond, regs.cond, 0)
                builder.mul(regs.mask, regs.cond, region.mask - hot_mask)
                builder.add(regs.mask, regs.mask, hot_mask)
                builder.op(Opcode.AND, regs.mask, regs.lcg, regs.mask)
            builder.add(regs.addr, region.base_reg, regs.mask)
            builder.ld(regs.value, regs.addr)
            builder.add(regs.sink, regs.sink, regs.value)


# ----------------------------------------------------------------------
# Spill/reload (lockstep produce -> spill -> gap -> reload).
# ----------------------------------------------------------------------
def emit_spill_reload(
    builder: ProgramBuilder,
    regs: PatternRegs,
    region: Region,
    background: Optional[Region],
    iterations: int,
    chain_length: int,
    gap_reads: int,
    counter: str,
    gap_counter: str,
    seed_source: Optional["Region"] = None,
    slot_stride: int = 8,
) -> None:
    """The spill-reload pattern: values vary per iteration (low locality).

    Each iteration derives a fresh seed from the loop counter, produces
    a value through the chain, spills it to a line-aligned slot, streams
    *gap_reads* background words (evicting the slot from closer cache
    levels), then reloads the slot — the reload is the swappable load.
    """
    with builder.loop(counter, 0, iterations) as index:
        if seed_source is None:
            builder.mul(regs.seed, index, 2654435761)
        else:
            emit_seed_from_memory(builder, regs, seed_source, index)
        emit_value_chain(builder, regs, chain_length)
        builder.mul(regs.mask, index, slot_stride)
        builder.op(Opcode.AND, regs.mask, regs.mask, region.mask)
        builder.add(regs.addr, region.base_reg, regs.mask)
        builder.st(regs.chain, regs.addr)
        if background is not None and gap_reads > 0:
            # Advance the stream window each iteration so the gap keeps
            # touching fresh lines rather than a cached prefix.
            offset = builder.reg("_gap_offset")
            builder.mul(offset, index, gap_reads * 8)
            emit_stream_reads(
                builder,
                regs,
                background,
                gap_reads,
                gap_counter,
                stride=8,
                offset_reg=offset,
            )
        builder.mul(regs.mask, index, slot_stride)
        builder.op(Opcode.AND, regs.mask, regs.mask, region.mask)
        builder.add(regs.addr, region.base_reg, regs.mask)
        builder.ld(regs.value, regs.addr)
        builder.add(regs.sink, regs.sink, regs.value)


# ----------------------------------------------------------------------
# Unswappable background work.
# ----------------------------------------------------------------------
def allocate_input(builder: ProgramBuilder, name: str, words: int, seed: int = 1) -> Region:
    """A read-only (program input) region: loads from it are unswappable."""
    if words & (words - 1):
        raise ValueError("input size must be a power of two")
    values = []
    state = seed
    for _ in range(words):
        state = (state * LCG_MUL + LCG_ADD) & 0x7FFFFFFF
        values.append(state)
    base = builder.data(values, read_only=True)
    base_reg = builder.reg(f"_input_{name}")
    builder.li(base_reg, base)
    return Region(base=base, words=words, base_reg=base_reg)


def emit_stream_reads(
    builder: ProgramBuilder,
    regs: PatternRegs,
    region: Region,
    count: int,
    counter: str,
    stride: int = 1,
    offset_reg: Optional[Reg] = None,
) -> None:
    """Sequentially stream *count* reads with *stride* through a region.

    With *offset_reg* the stream starts at a caller-controlled offset so
    repeated invocations touch fresh lines (real eviction pressure)
    instead of re-reading a cached prefix.
    """
    with builder.loop(counter, 0, count) as index:
        builder.mul(regs.addr, index, stride)
        if offset_reg is not None:
            builder.add(regs.addr, regs.addr, offset_reg)
        builder.op(Opcode.AND, regs.addr, regs.addr, region.mask)
        builder.add(regs.addr, regs.addr, region.base_reg)
        builder.ld(regs.value, regs.addr)
        builder.add(regs.sink, regs.sink, regs.value)


def allocate_chase_input(builder: ProgramBuilder, name: str, nodes: int) -> Region:
    """A read-only permutation array for pointer chasing (mcf flavour)."""
    if nodes & (nodes - 1):
        raise ValueError("node count must be a power of two")
    # A maximal-period walk: next[i] = (i * 5 + 17) % nodes visits every
    # node (5 is coprime with the power-of-two size).
    values = [(i * 5 + 17) % nodes for i in range(nodes)]
    base = builder.data(values, read_only=True)
    base_reg = builder.reg(f"_chase_{name}")
    builder.li(base_reg, base)
    return Region(base=base, words=nodes, base_reg=base_reg)


def emit_pointer_chase(
    builder: ProgramBuilder,
    regs: PatternRegs,
    chase: Region,
    steps: int,
    counter: str,
    cursor: Reg,
) -> None:
    """Chase *steps* pointers through a read-only next[] array."""
    with builder.loop(counter, 0, steps):
        builder.op(Opcode.AND, regs.addr, cursor, chase.mask)
        builder.add(regs.addr, regs.addr, chase.base_reg)
        builder.ld(cursor, regs.addr)
        builder.add(regs.sink, regs.sink, cursor)


def emit_compute_block(
    builder: ProgramBuilder,
    regs: PatternRegs,
    iterations: int,
    ops_per_iteration: int,
    counter: str,
    use_fp: bool = True,
) -> None:
    """Pure compute: a dependent FP/int chain, no memory traffic."""
    fp = builder.reg("_fp_acc")
    builder.op(Opcode.CVTIF, fp, regs.sink)
    with builder.loop(counter, 0, iterations):
        for step in range(ops_per_iteration):
            if use_fp and step % 3 == 0:
                builder.op(Opcode.FMA, fp, fp, 1.000000119, 0.3)
            elif use_fp and step % 3 == 1:
                builder.op(Opcode.FMUL, fp, fp, 0.99999988)
            else:
                builder.op(Opcode.XOR, regs.cond, regs.sink, 0x9E3779B9)
                builder.add(regs.sink, regs.sink, regs.cond)
    builder.op(Opcode.CVTFI, regs.cond, fp)
    builder.add(regs.sink, regs.sink, regs.cond)
