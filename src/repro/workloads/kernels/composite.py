"""The parameterised composite kernel behind the benchmark suite.

A composite kernel runs a configurable number of *phases*, each of which
executes a calibrated mix of the pattern components from
:mod:`repro.workloads.kernels.patterns`:

* one or more **phase-constant regions** (:class:`RegionSpec`), whose
  scattered reads are the swappable loads.  A region's size against the
  scaled cache hierarchy (L1 = 128 words, L2 = 1024 words) pins where
  its reads are serviced, so the *mix* of region specs composes the
  paper's Table 5 service-level profile; per-region chain length and
  seeding compose Figures 6 and 7;
* a **spill-reload** block (swappable lockstep reloads, per-iteration
  values, low locality);
* **unswappable background**: streaming reads over read-only input,
  pointer chasing, and pure compute, which set the baseline energy mix.

Every paper benchmark is an instance of :class:`KernelParams`
(see :mod:`repro.workloads.suite`).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from ...isa.builder import ProgramBuilder
from ...isa.opcodes import Opcode
from ...isa.program import Program
from .patterns import (
    PatternRegs,
    Region,
    allocate_chase_input,
    allocate_input,
    allocate_region,
    emit_compute_block,
    emit_constant_fill,
    emit_pointer_chase,
    emit_region_fill,
    emit_scatter_reads,
    emit_seed_from_memory,
    emit_spill_reload,
    emit_stream_reads,
    emit_value_chain,
)


@dataclasses.dataclass(frozen=True)
class RegionSpec:
    """One phase-constant region and its swappable read traffic.

    With the harness cache scaling (L1 = 128 words, L2 = 1024 words):
    ``words <= 128`` keeps reads L1-resident, ``words ~ 512-1024`` makes
    them L2-resident, and ``words >= 4096`` pushes them to main memory.
    """

    words: int  # power of two
    sites: int = 4  # static swappable loads reading this region
    repeats: int = 2  # dynamic executions per site per phase
    chain_length: int = 4  # recomputation-slice length driver
    nc_leaves: bool = True  # seed the chain from memory (w/ nc slices)
    refill_every: int = 1  # rewrite the region every k-th phase
    #: Fill with this immediate instead of a chain value: slices become
    #: single LI instructions (bfs-style flag arrays).
    fill_constant: Optional[int] = None
    #: Keep reads inside a small hot subset (<= L1) except every
    #: ``cold_every``-th repeat, which roams the whole region.  Gives
    #: each static load the mixed L1/memory service profile that makes
    #: the probabilistic model swap mostly-L1 loads (the sr story).
    hot_mask: Optional[int] = None
    cold_every: int = 0


@dataclasses.dataclass(frozen=True)
class KernelParams:
    """Calibration knobs of one composite benchmark."""

    phases: int = 4
    region_specs: Tuple[RegionSpec, ...] = ()

    # Spill-reload component.
    spill_iterations: int = 0
    spill_chain_length: int = 3
    spill_gap_reads: int = 0
    spill_region_words: int = 256
    spill_nc_leaves: bool = True

    # Unswappable background.
    input_words: int = 0  # read-only input region (power of two)
    stream_reads: int = 0  # per phase
    chase_nodes: int = 0
    chase_steps: int = 0  # per phase
    compute_iterations: int = 0  # per phase
    compute_ops: int = 4
    use_fp: bool = True

    def scaled(self, scale: float) -> "KernelParams":
        """Scale the time dimension (phase count); footprints stay put."""
        return dataclasses.replace(self, phases=max(2, round(self.phases * scale)))

    def needs_input(self) -> bool:
        return (
            any(
                spec.nc_leaves and spec.fill_constant is None
                for spec in self.region_specs
            )
            or (self.spill_iterations and self.spill_nc_leaves)
            or (self.spill_iterations and self.spill_gap_reads)
            or self.stream_reads > 0
        )


def build_composite(name: str, params: KernelParams, scale: float = 1.0) -> Program:
    """Materialise the composite kernel for *params* at *scale*."""
    params = params.scaled(scale)
    if params.needs_input() and not params.input_words:
        raise ValueError(
            f"{name}: memory-seeded chains, spill gaps, or streams need "
            f"input_words > 0"
        )
    builder = ProgramBuilder(name)
    regs = PatternRegs.allocate(builder)

    regions: List[Region] = [
        allocate_region(builder, f"r{index}", spec.words)
        for index, spec in enumerate(params.region_specs)
    ]
    spill_region: Optional[Region] = None
    if params.spill_iterations:
        spill_region = allocate_region(builder, "spill", params.spill_region_words)
    input_region: Optional[Region] = None
    if params.input_words:
        input_region = allocate_input(builder, "in", params.input_words)
    chase: Optional[Region] = None
    cursor = None
    if params.chase_nodes:
        chase = allocate_chase_input(builder, "next", params.chase_nodes)
        cursor = builder.reg("_cursor")
        builder.li(cursor, 1)
    stream_offset = builder.reg("_stream_off")
    result_cell = builder.reserve(1)

    builder.li(regs.lcg, 88172645463325252)
    builder.li(regs.sink, 0)
    builder.li(stream_offset, 0)

    with builder.loop("phase", 0, params.phases) as phase:
        for index, spec in enumerate(params.region_specs):
            _emit_refill(builder, regs, spec, regions[index], input_region, index, phase)
        for index, spec in enumerate(params.region_specs):
            emit_scatter_reads(
                builder,
                regs,
                regions[index],
                sites=spec.sites,
                repeats=spec.repeats,
                counter="rd",
                hot_mask=spec.hot_mask,
                cold_every=spec.cold_every,
            )
        if spill_region is not None:
            emit_spill_reload(
                builder,
                regs,
                spill_region,
                input_region,
                iterations=params.spill_iterations,
                chain_length=params.spill_chain_length,
                gap_reads=params.spill_gap_reads,
                counter="sp",
                gap_counter="gp",
                seed_source=input_region if params.spill_nc_leaves else None,
            )
        if input_region is not None and params.stream_reads:
            builder.mul(stream_offset, phase, params.stream_reads * 8)
            emit_stream_reads(
                builder,
                regs,
                input_region,
                count=params.stream_reads,
                counter="st",
                stride=8,
                offset_reg=stream_offset,
            )
        if chase is not None and params.chase_steps:
            emit_pointer_chase(builder, regs, chase, params.chase_steps, "ch", cursor)
        if params.compute_iterations:
            emit_compute_block(
                builder,
                regs,
                iterations=params.compute_iterations,
                ops_per_iteration=params.compute_ops,
                counter="cp",
                use_fp=params.use_fp,
            )

    result_base = builder.reg("_result")
    builder.li(result_base, result_cell)
    builder.st(regs.sink, result_base)
    return builder.build()


def _emit_refill(
    builder: ProgramBuilder,
    regs: PatternRegs,
    spec: RegionSpec,
    region: Region,
    input_region: Optional[Region],
    index: int,
    phase,
) -> None:
    """Recompute this region's phase value and rewrite the region."""

    def fill() -> None:
        if spec.fill_constant is not None:
            emit_constant_fill(builder, regs, region, spec.fill_constant, counter="fl")
            return
        if spec.nc_leaves:
            builder.mul(regs.cond, phase, 7)
            builder.add(regs.cond, regs.cond, index * 97 + 13)
            emit_seed_from_memory(builder, regs, input_region, regs.cond)
        else:
            builder.mul(regs.seed, phase, 2246822519)
            builder.add(regs.seed, regs.seed, index * 97 + 13)
        emit_value_chain(builder, regs, spec.chain_length)
        if spec.nc_leaves:
            # Destroy the seed register: the chain's deepest input is
            # now lost by read time, so it must come from Hist via the
            # checkpointed seed load (a "w/ nc" slice, Figure 7).
            builder.op(Opcode.XOR, regs.seed, regs.seed, 0x5A5A5A5A)
        emit_region_fill(builder, regs, region, counter="fl")

    if spec.refill_every <= 1:
        fill()
    else:
        builder.op(Opcode.REM, regs.cond, phase, spec.refill_every)
        with builder.when(Opcode.BEQ, regs.cond, builder.zero):
            fill()
