"""Organic algorithm kernels: real programs, not calibration fixtures.

The suite's composite kernels are shaped to reproduce the paper's
per-benchmark characterisation; these kernels exist for the opposite
reason — they are straightforward implementations of familiar
algorithms, written naturally in the ISA, whose *functional outputs*
can be checked against Python references.  They exercise the simulator
and the amnesic compiler on code that was not designed around the
recomputation patterns: whatever the compiler finds here, it found on
its own.

Each builder returns ``(program, result_base, expected)`` where
``expected`` is the list of values the finished program must leave at
``result_base``.
"""

from __future__ import annotations

from typing import List, Tuple

from ...isa.builder import ProgramBuilder
from ...isa.opcodes import Opcode
from ...isa.program import Program

Build = Tuple[Program, int, List[float]]


def matmul(n: int = 6) -> Build:
    """Dense n x n matrix multiply: C = A @ B, row-major."""
    a = [[(i * n + j) % 7 + 1 for j in range(n)] for i in range(n)]
    b = [[(i * 3 + j * 5) % 11 + 1 for j in range(n)] for i in range(n)]
    expected = [
        float(sum(a[i][k] * b[k][j] for k in range(n)))
        for i in range(n)
        for j in range(n)
    ]

    builder = ProgramBuilder("matmul")
    base_a = builder.data([float(v) for row in a for v in row], read_only=True)
    base_b = builder.data([float(v) for row in b for v in row], read_only=True)
    base_c = builder.reserve(n * n)
    ra, rb, rc, acc, addr, va, vb = builder.regs(
        "a", "b", "c", "acc", "addr", "va", "vb"
    )
    builder.li(ra, base_a)
    builder.li(rb, base_b)
    builder.li(rc, base_c)
    with builder.loop("i", 0, n) as i:
        with builder.loop("j", 0, n) as j:
            builder.op(Opcode.CVTIF, acc, builder.zero)
            with builder.loop("k", 0, n) as k:
                builder.mul(addr, i, n)
                builder.add(addr, addr, k)
                builder.add(addr, addr, ra)
                builder.ld(va, addr)
                builder.mul(addr, k, n)
                builder.add(addr, addr, j)
                builder.add(addr, addr, rb)
                builder.ld(vb, addr)
                builder.op(Opcode.FMA, acc, va, vb, acc)
            builder.mul(addr, i, n)
            builder.add(addr, addr, j)
            builder.add(addr, addr, rc)
            builder.st(acc, addr)
    return builder.build(), base_c, expected


def prefix_sum(n: int = 64) -> Build:
    """Inclusive prefix sum of an integer array."""
    values = [(i * 37 + 11) % 101 for i in range(n)]
    expected_values: List[float] = []
    running = 0
    for value in values:
        running += value
        expected_values.append(running)

    builder = ProgramBuilder("prefix_sum")
    base_in = builder.data(values, read_only=True)
    base_out = builder.reserve(n)
    r_in, r_out, acc, addr, v = builder.regs("in", "out", "acc", "addr", "v")
    builder.li(r_in, base_in)
    builder.li(r_out, base_out)
    builder.li(acc, 0)
    with builder.loop("i", 0, n) as i:
        builder.add(addr, r_in, i)
        builder.ld(v, addr)
        builder.add(acc, acc, v)
        builder.add(addr, r_out, i)
        builder.st(acc, addr)
    return builder.build(), base_out, [float(v) for v in expected_values]


def fibonacci_table(n: int = 32) -> Build:
    """Fibonacci via a memo table: fib[i] = fib[i-1] + fib[i-2].

    Each entry is stored, then *reloaded* to compute the next — the
    organic spill/reload pattern the amnesic compiler looks for.
    """
    expected = [0, 1]
    for _ in range(2, n):
        expected.append(expected[-1] + expected[-2])

    builder = ProgramBuilder("fibonacci")
    table = builder.reserve(n)
    r_table, addr, x, y = builder.regs("table", "addr", "x", "y")
    builder.li(r_table, table)
    builder.st(0, r_table, offset=0)
    builder.st(1, r_table, offset=1)
    with builder.loop("i", 2, n) as i:
        builder.add(addr, r_table, i)
        builder.ld(x, addr, offset=-1)
        builder.ld(y, addr, offset=-2)
        builder.add(x, x, y)
        builder.st(x, addr)
    return builder.build(), table, [float(v) for v in expected]


def histogram(buckets: int = 16, samples: int = 128) -> Build:
    """Bucketed histogram of a pseudo-random key stream."""
    keys = [(i * 1103515245 + 12345) % (2 ** 31) for i in range(samples)]
    expected = [0] * buckets
    for key in keys:
        expected[key % buckets] += 1

    builder = ProgramBuilder("histogram")
    base_keys = builder.data(keys, read_only=True)
    base_counts = builder.reserve(buckets)
    r_keys, r_counts, key, addr, count = builder.regs(
        "keys", "counts", "key", "addr", "count"
    )
    builder.li(r_keys, base_keys)
    builder.li(r_counts, base_counts)
    with builder.loop("i", 0, samples) as i:
        builder.add(addr, r_keys, i)
        builder.ld(key, addr)
        builder.op(Opcode.REM, key, key, buckets)
        builder.add(addr, r_counts, key)
        builder.ld(count, addr)
        builder.add(count, count, 1)
        builder.st(count, addr)
    return builder.build(), base_counts, [float(v) for v in expected]


def polynomial_eval(degree: int = 8, points: int = 24) -> Build:
    """Horner evaluation of one polynomial at many points."""
    coefficients = [((i * 7) % 5) - 2 for i in range(degree + 1)]
    xs = [0.5 + 0.25 * i for i in range(points)]

    def horner(x: float) -> float:
        acc = 0.0
        for coefficient in coefficients:
            acc = acc * x + coefficient
        return acc

    expected = [horner(x) for x in xs]

    builder = ProgramBuilder("polynomial")
    base_coeff = builder.data([float(c) for c in coefficients], read_only=True)
    base_x = builder.data(xs, read_only=True)
    base_out = builder.reserve(points)
    r_coeff, r_x, r_out, acc, x, c, addr = builder.regs(
        "coeff", "x", "out", "acc", "xv", "cv", "addr"
    )
    builder.li(r_coeff, base_coeff)
    builder.li(r_x, base_x)
    builder.li(r_out, base_out)
    with builder.loop("p", 0, points) as p:
        builder.add(addr, r_x, p)
        builder.ld(x, addr)
        builder.op(Opcode.CVTIF, acc, builder.zero)
        with builder.loop("d", 0, degree + 1) as d:
            builder.add(addr, r_coeff, d)
            builder.ld(c, addr)
            builder.op(Opcode.FMA, acc, acc, x, c)
        builder.add(addr, r_out, p)
        builder.st(acc, addr)
    return builder.build(), base_out, expected


def normalize(n: int = 48) -> Build:
    """Two-pass normalisation: scale = n / sum(x); out[i] = x[i] * scale.

    The scale factor is computed once, spilled to a memory cell (a
    loop-invariant global), and reloaded on every iteration of the
    second pass — the classic organic recomputation opportunity: the
    reload's producer chain is short, stable, and replayable.
    """
    values = [((i * 13) % 17) + 1 for i in range(n)]
    total = sum(values)
    scale = float(n) / float(total)
    expected = [value * scale for value in values]

    builder = ProgramBuilder("normalize")
    base_in = builder.data([float(v) for v in values], read_only=True)
    base_out = builder.reserve(n)
    scale_cell = builder.reserve(1)
    r_in, r_out, r_scale, acc, v, addr, s_val = builder.regs(
        "in", "out", "scale", "acc", "v", "addr", "sval"
    )
    builder.li(r_in, base_in)
    builder.li(r_out, base_out)
    builder.li(r_scale, scale_cell)
    # Pass 1: total, then the spilled scale factor.
    builder.op(Opcode.CVTIF, acc, builder.zero)
    with builder.loop("i", 0, n) as i:
        builder.add(addr, r_in, i)
        builder.ld(v, addr)
        builder.fadd(acc, acc, v)
    builder.op(Opcode.CVTIF, v, builder.zero)
    builder.op(Opcode.FADD, v, v, float(n))
    builder.op(Opcode.FDIV, acc, v, acc)
    builder.st(acc, r_scale)
    # Pass 2: reload the scale every iteration (swappable).
    with builder.loop("j", 0, n) as j:
        builder.ld(s_val, r_scale)
        builder.add(addr, r_in, j)
        builder.ld(v, addr)
        builder.fmul(v, v, s_val)
        builder.add(addr, r_out, j)
        builder.st(v, addr)
    return builder.build(), base_out, expected


#: All algorithm builders, for parametrised testing.
ALGORITHMS = {
    "matmul": matmul,
    "prefix_sum": prefix_sum,
    "fibonacci": fibonacci_table,
    "histogram": histogram,
    "polynomial": polynomial_eval,
    "normalize": normalize,
}
