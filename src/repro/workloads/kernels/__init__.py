"""Kernel pattern emitters, the composite builder, and organic algorithms."""

from .algorithms import ALGORITHMS

from .composite import KernelParams, RegionSpec, build_composite
from .patterns import (
    PatternRegs,
    Region,
    allocate_chase_input,
    allocate_input,
    allocate_region,
    emit_compute_block,
    emit_pointer_chase,
    emit_region_fill,
    emit_scatter_reads,
    emit_seed_from_memory,
    emit_spill_reload,
    emit_stream_reads,
    emit_value_chain,
)

__all__ = [
    "ALGORITHMS",
    "KernelParams",
    "PatternRegs",
    "Region",
    "RegionSpec",
    "allocate_chase_input",
    "allocate_input",
    "allocate_region",
    "build_composite",
    "emit_compute_block",
    "emit_pointer_chase",
    "emit_region_fill",
    "emit_scatter_reads",
    "emit_seed_from_memory",
    "emit_spill_reload",
    "emit_stream_reads",
    "emit_value_chain",
]
