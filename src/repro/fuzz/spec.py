"""Serializable fuzz-program specifications and their materialisation.

The differential fuzzer does not mutate instruction streams directly.
It works on a :class:`ProgramSpec` — a tiny declarative description of a
loop body made of *statements* (produce a value through an arithmetic
chain, spill it, clobber a register, generate background cache traffic,
reload a slot, fold a loop-carried accumulator).  The spec is the unit
the whole subsystem agrees on:

* the generator (:mod:`repro.fuzz.generator`) draws random specs;
* :func:`materialize` lowers a spec to an executable
  :class:`~repro.isa.program.Program` via
  :class:`~repro.isa.builder.ProgramBuilder`;
* the shrinker (:mod:`repro.fuzz.shrinker`) deletes and simplifies
  statements, not instructions, so counterexamples stay readable;
* the corpus (:mod:`repro.fuzz.corpus`) stores specs as JSON so a
  committed counterexample replays bit-identically forever.

Every construct maps onto a scenario the AMNESIAC compiler and
scheduler must survive: chains become recomputation slices, strided
stores create store-to-load aliasing, clobbers force Hist checkpoints,
read-only-table loads become non-recomputable (checkpoint-load) leaves,
gaps evict lines so probing policies actually fire, carries create
loop-carried dependences with unstable producer templates, and traps
schedule an arithmetic fault for a chosen iteration so execution
backends must keep mid-region fault state classic-exact.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Dict, List, Optional, Tuple, Union

from ..errors import FuzzError
from ..isa.builder import ProgramBuilder
from ..isa.opcodes import Opcode
from ..isa.program import Program

#: Bumped when the spec JSON layout changes incompatibly.
SPEC_FORMAT_VERSION = 1

#: Size of the read-only input table (power of two, so masked indices
#: always land inside it).
RO_WORDS = 64

#: Temp registers a spec may name.  Small on purpose: reuse across
#: statements is what creates clobbering and dependence chains.
TEMP_NAMES = ("t0", "t1", "t2", "t3", "v")

#: Integer opcodes a chain may apply (value-deterministic, never fault
#: with the immediates the generator draws).
CHAIN_OPCODES = {
    "add": Opcode.ADD,
    "sub": Opcode.SUB,
    "mul": Opcode.MUL,
    "xor": Opcode.XOR,
    "or": Opcode.OR,
    "and": Opcode.AND,
    "min": Opcode.MIN,
    "max": Opcode.MAX,
    "shl": Opcode.SHL,
    "shr": Opcode.SHR,
}

ChainOp = Tuple[str, int]


def ro_table() -> List[int]:
    """The deterministic read-only input table every spec shares.

    Values are all non-zero so a scheduler bug that fabricates zeros for
    checkpointed operands is always observable.
    """
    return [(11 + 7 * k) % 4093 + 1 for k in range(RO_WORDS)]


# ----------------------------------------------------------------------
# Statements.
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class Produce:
    """``temp = chain(source)`` — the producer of a future spill.

    ``source`` is ``"index"`` (the loop counter), ``"roload"`` (a load
    from the read-only table at ``(i * ro_stride) & mask`` — a
    non-recomputable leaf), or the name of another temp (deepens the
    producer tree).  An empty chain copies the source unchanged, which
    is how the corpus covers trivial one-node slices.
    """

    temp: str
    source: str = "index"
    chain: Tuple[ChainOp, ...] = ()
    ro_stride: int = 1
    kind: str = dataclasses.field(default="produce", init=False)


@dataclasses.dataclass(frozen=True)
class Store:
    """Spill ``temp`` to ``slots[(i * stride + offset) & mask]``.

    ``stride == 0`` is a fixed slot (classic accumulator spill) and
    lowers to a single ST; a non-zero stride walks the slot region and
    aliases with any other statement sharing its address expression.
    """

    temp: str
    offset: int = 0
    stride: int = 0
    kind: str = dataclasses.field(default="store", init=False)


@dataclasses.dataclass(frozen=True)
class Clobber:
    """``temp ^= value`` — kill the live register holding a spilled value.

    Forces the compiler to classify leaf inputs drawn from ``temp`` as
    non-recomputable (Hist) rather than live-register.
    """

    temp: str
    value: int = 0x1234
    kind: str = dataclasses.field(default="clobber", init=False)


@dataclasses.dataclass(frozen=True)
class Gap:
    """``count`` background loads from the read-only table.

    Pollutes the cache hierarchy between a spill and its reload so the
    probing policies (FLC/LLC) see genuine misses and fire.
    """

    count: int = 4
    stride: int = 1
    kind: str = dataclasses.field(default="gap", init=False)


@dataclasses.dataclass(frozen=True)
class Reload:
    """Reload a slot — the load the amnesic compiler may swap for RCMP."""

    offset: int = 0
    stride: int = 0
    temp: str = "v"
    accumulate: bool = True
    kind: str = dataclasses.field(default="reload", init=False)


@dataclasses.dataclass(frozen=True)
class Carry:
    """``temp = op(temp, source)`` — a loop-carried dependence.

    ``temp`` survives iterations, so a spill of it has a producer
    template that grows with the trip count (template-stability stress).
    """

    temp: str
    source: str
    op: str = "add"
    kind: str = dataclasses.field(default="carry", init=False)


@dataclasses.dataclass(frozen=True)
class Trap:
    """``temp = temp / (i - at)`` — an arithmetic fault on iteration ``at``.

    Lowers to ``SUB a, i, at; DIV temp, temp, a``, so the divisor hits
    zero exactly when the loop counter reaches ``at``.  This is the
    batching-adversarial statement: the DIV sits inside a straight-line
    run, so a region-batching backend must either fall back (the run's
    region is ``faulting``) or fault mid-region with classic-exact
    instruction counts and pc.  ``at >= iterations`` never fires — the
    spec runs clean but still forces the faulting-region fallback.
    """

    temp: str
    at: int = 0
    kind: str = dataclasses.field(default="trap", init=False)


Statement = Union[Produce, Store, Clobber, Gap, Reload, Carry, Trap]

_STATEMENT_TYPES: Dict[str, type] = {
    "produce": Produce,
    "store": Store,
    "clobber": Clobber,
    "gap": Gap,
    "reload": Reload,
    "carry": Carry,
    "trap": Trap,
}


# ----------------------------------------------------------------------
# The spec itself.
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class ProgramSpec:
    """A complete fuzz program: one counted loop over *statements*."""

    name: str
    iterations: int
    slot_words: int
    statements: Tuple[Statement, ...]
    emit_output: bool = True
    seed: Optional[int] = None  # provenance only; not used to materialise

    # ------------------------------------------------------------------
    # Serialisation.
    # ------------------------------------------------------------------
    def to_json(self) -> Dict[str, object]:
        return {
            "format": SPEC_FORMAT_VERSION,
            "name": self.name,
            "iterations": self.iterations,
            "slot_words": self.slot_words,
            "emit_output": self.emit_output,
            "seed": self.seed,
            "statements": [_statement_to_json(s) for s in self.statements],
        }

    @classmethod
    def from_json(cls, payload: Dict[str, object]) -> "ProgramSpec":
        version = payload.get("format")
        if version != SPEC_FORMAT_VERSION:
            raise FuzzError(
                f"unsupported spec format {version!r} "
                f"(expected {SPEC_FORMAT_VERSION})"
            )
        return cls(
            name=str(payload["name"]),
            iterations=int(payload["iterations"]),
            slot_words=int(payload["slot_words"]),
            emit_output=bool(payload.get("emit_output", True)),
            seed=payload.get("seed"),
            statements=tuple(
                _statement_from_json(s) for s in payload["statements"]
            ),
        )

    def digest(self) -> str:
        """Short content hash — stable corpus entry / dedupe identity.

        The name and seed are provenance, not behaviour, so they do not
        participate: a shrunk spec that reproduces an existing corpus
        entry is recognised as a duplicate.
        """
        payload = self.to_json()
        payload.pop("name")
        payload.pop("seed")
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]

    def replace(self, **changes) -> "ProgramSpec":
        return dataclasses.replace(self, **changes)


def _statement_to_json(statement: Statement) -> Dict[str, object]:
    payload = dataclasses.asdict(statement)
    if isinstance(statement, Produce):
        payload["chain"] = [list(op) for op in statement.chain]
    return payload


def _statement_from_json(payload: Dict[str, object]) -> Statement:
    data = dict(payload)
    kind = data.pop("kind", None)
    try:
        statement_type = _STATEMENT_TYPES[kind]
    except KeyError:
        raise FuzzError(f"unknown statement kind {kind!r}") from None
    if statement_type is Produce and "chain" in data:
        data["chain"] = tuple((str(op), int(imm)) for op, imm in data["chain"])
    try:
        return statement_type(**data)
    except TypeError as error:
        raise FuzzError(f"bad {kind} statement: {error}") from None


# ----------------------------------------------------------------------
# Validation.
# ----------------------------------------------------------------------
def validate_spec(spec: ProgramSpec) -> None:
    """Raise :class:`FuzzError` if *spec* cannot be materialised."""
    if spec.iterations < 1:
        raise FuzzError(f"iterations must be >= 1, got {spec.iterations}")
    if spec.slot_words < 1 or spec.slot_words & (spec.slot_words - 1):
        raise FuzzError(
            f"slot_words must be a positive power of two, got {spec.slot_words}"
        )
    if not spec.statements:
        raise FuzzError("spec has no statements")
    for statement in spec.statements:
        _validate_statement(statement, spec)


def _validate_statement(statement: Statement, spec: ProgramSpec) -> None:
    if isinstance(statement, Produce):
        if statement.temp not in TEMP_NAMES:
            raise FuzzError(f"unknown temp {statement.temp!r}")
        if statement.source not in ("index", "roload") and (
            statement.source not in TEMP_NAMES
        ):
            raise FuzzError(f"unknown produce source {statement.source!r}")
        for op, imm in statement.chain:
            if op not in CHAIN_OPCODES:
                raise FuzzError(f"unknown chain opcode {op!r}")
            if op in ("div", "rem") and imm == 0:
                raise FuzzError("zero divisor in chain")
    elif isinstance(statement, (Store, Reload)):
        temp = statement.temp
        if temp not in TEMP_NAMES:
            raise FuzzError(f"unknown temp {temp!r}")
        if not 0 <= statement.offset < spec.slot_words:
            raise FuzzError(
                f"slot offset {statement.offset} outside [0, {spec.slot_words})"
            )
        if statement.stride < 0:
            raise FuzzError(f"negative stride {statement.stride}")
    elif isinstance(statement, Clobber):
        if statement.temp not in TEMP_NAMES:
            raise FuzzError(f"unknown temp {statement.temp!r}")
    elif isinstance(statement, Gap):
        if statement.count < 1:
            raise FuzzError(f"gap count must be >= 1, got {statement.count}")
    elif isinstance(statement, Carry):
        if statement.temp not in TEMP_NAMES or statement.source not in TEMP_NAMES:
            raise FuzzError(
                f"carry registers must be temps, got "
                f"{statement.temp!r}/{statement.source!r}"
            )
        if statement.op not in CHAIN_OPCODES:
            raise FuzzError(f"unknown carry opcode {statement.op!r}")
    elif isinstance(statement, Trap):
        if statement.temp not in TEMP_NAMES:
            raise FuzzError(f"unknown temp {statement.temp!r}")
        if statement.at < 0:
            raise FuzzError(f"trap iteration must be >= 0, got {statement.at}")
    else:  # pragma: no cover - the union is exhaustive
        raise FuzzError(f"unknown statement {statement!r}")


# ----------------------------------------------------------------------
# Materialisation.
# ----------------------------------------------------------------------
def _uses_ro_table(spec: ProgramSpec) -> bool:
    return any(
        isinstance(s, Gap) or (isinstance(s, Produce) and s.source == "roload")
        for s in spec.statements
    )


def _uses_sink(spec: ProgramSpec) -> bool:
    return any(
        isinstance(s, Gap) or (isinstance(s, Reload) and s.accumulate)
        for s in spec.statements
    )


def _temps_read_before_written(spec: ProgramSpec) -> List[str]:
    """Temps whose first use in the loop body is a read.

    These must be initialised before the loop so the first iteration
    computes over defined values (and so every iteration is uniform).
    """
    written: set = set()
    needs_init: List[str] = []

    def read(temp: str) -> None:
        if temp not in written and temp not in needs_init:
            needs_init.append(temp)

    for statement in spec.statements:
        if isinstance(statement, Produce):
            if statement.source in TEMP_NAMES:
                read(statement.source)
            written.add(statement.temp)
        elif isinstance(statement, Store):
            read(statement.temp)
        elif isinstance(statement, Clobber):
            read(statement.temp)
            written.add(statement.temp)
        elif isinstance(statement, Reload):
            written.add(statement.temp)
        elif isinstance(statement, Carry):
            read(statement.temp)
            read(statement.source)
            written.add(statement.temp)
        elif isinstance(statement, Trap):
            read(statement.temp)
            written.add(statement.temp)
    return needs_init


def materialize(spec: ProgramSpec) -> Program:
    """Lower *spec* to an executable program (validates first)."""
    validate_spec(spec)
    b = ProgramBuilder(spec.name)
    uses_ro = _uses_ro_table(spec)
    uses_sink = _uses_sink(spec)
    mask = spec.slot_words - 1

    ro_base = b.data(ro_table(), read_only=True) if uses_ro else None
    slots = b.reserve(spec.slot_words)

    r_slot = b.reg("slot")
    b.li(r_slot, slots)
    if uses_ro:
        r_bg = b.reg("bg")
        b.li(r_bg, ro_base)
    if uses_sink:
        sink = b.reg("sink")
        b.li(sink, 0)
    for index, temp in enumerate(_temps_read_before_written(spec)):
        b.li(b.reg(temp), index + 1)

    def slot_address(offset: int, stride: int):
        """Emit the slot address computation; returns (base, imm offset)."""
        if stride == 0:
            return r_slot, offset & mask
        a = b.reg("a")
        b.mul(a, i, stride)
        if offset:
            b.add(a, a, offset)
        b.op(Opcode.AND, a, a, mask)
        b.add(a, a, r_slot)
        return a, 0

    with b.loop("i", 0, spec.iterations) as i:
        for statement in spec.statements:
            if isinstance(statement, Produce):
                t = b.reg(statement.temp)
                chain = list(statement.chain)
                if statement.source == "index":
                    if chain:
                        op, imm = chain.pop(0)
                        b.op(CHAIN_OPCODES[op], t, i, imm)
                    else:
                        b.mov(t, i)
                elif statement.source == "roload":
                    if statement.ro_stride == 0:
                        b.ld(t, r_bg, comment="read-only input")
                    else:
                        a = b.reg("a")
                        b.mul(a, i, statement.ro_stride)
                        b.op(Opcode.AND, a, a, RO_WORDS - 1)
                        b.add(a, a, r_bg)
                        b.ld(t, a, comment="read-only input")
                else:
                    source = b.reg(statement.source)
                    if chain:
                        op, imm = chain.pop(0)
                        b.op(CHAIN_OPCODES[op], t, source, imm)
                    else:
                        b.mov(t, source)
                for op, imm in chain:
                    b.op(CHAIN_OPCODES[op], t, t, imm)
            elif isinstance(statement, Store):
                base, offset = slot_address(statement.offset, statement.stride)
                b.st(b.reg(statement.temp), base, offset)
            elif isinstance(statement, Clobber):
                t = b.reg(statement.temp)
                b.op(Opcode.XOR, t, t, statement.value)
            elif isinstance(statement, Gap):
                g = b.reg("g")
                with b.loop("j", 0, statement.count) as j:
                    b.mul(g, j, statement.stride)
                    b.add(g, g, i)
                    b.op(Opcode.AND, g, g, RO_WORDS - 1)
                    b.add(g, g, r_bg)
                    b.ld(g, g)
                    b.add(sink, sink, g)
            elif isinstance(statement, Reload):
                base, offset = slot_address(statement.offset, statement.stride)
                t = b.reg(statement.temp)
                b.ld(t, base, offset, comment="reload (swappable)")
                if statement.accumulate:
                    b.add(sink, sink, t)
            elif isinstance(statement, Carry):
                t = b.reg(statement.temp)
                b.op(
                    CHAIN_OPCODES[statement.op], t, t, b.reg(statement.source)
                )
            elif isinstance(statement, Trap):
                t = b.reg(statement.temp)
                a = b.reg("a")
                b.sub(a, i, statement.at)
                b.op(Opcode.DIV, t, t, a)

    if spec.emit_output and uses_sink:
        out = b.reserve(1)
        r_out = b.reg("out")
        b.li(r_out, out)
        b.st(sink, r_out)
    return b.build()
