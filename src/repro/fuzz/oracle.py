"""The differential oracle: amnesic execution must be invisible.

For one spec the oracle runs the classic interpreter, compiles the
program through the full profile→amnesic-compile pipeline, executes the
binary under every requested scheduler policy with inline verification
*off* (so a scheduler bug surfaces as divergent architectural state, the
way it would in production), and checks three families of invariants:

* **architectural equivalence** — final registers and the final memory
  image match the classic run exactly, for every policy;
* **structural consistency** — the Renamer holds no live mappings and
  the SFile no live entries after HALT, the ``recompute`` flag is down,
  Hist occupancy respects its capacity, every fired slice id exists in
  the binary, RCMP outcomes partition (encountered = fired + skipped +
  fallbacks), and dynamic loads are conserved (classic loads = amnesic
  loads performed + loads swapped for recomputation);
* **energy accounting** — per-group energies are non-negative, the
  grand total equals the per-group sum (``E_total = E_compute + E_mem
  ± E_rc`` deltas, with nothing charged outside the breakdown), classic
  runs carry zero Hist/amnesic energy, and every probabilistically
  selected slice respects its budget
  (``selection_cost < estimated_load_cost``).

A spec whose *classic* run faults is reported as **invalid** rather
than failing: the generator occasionally draws programs that exceed the
instruction budget, and those say nothing about amnesic execution.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple, Type

from ..compiler.amnesic_pass import (
    SELECTION_PROBABILISTIC,
    CompilationResult,
    PassOptions,
    compile_amnesic,
)
from ..core.amnesic_cpu import AmnesicCPU
from ..core.execution import _oracle_options, run_classic
from ..core.policies import POLICY_NAMES, make_policy
from ..energy import EnergyModel, EPITable
from ..energy.account import GROUP_AMNESIC, GROUP_HIST
from ..errors import ReproError
from ..isa.program import Program
from ..machine import CacheGeometry, MachineConfig
from ..machine.config import (
    PAPER_L1_PARAMS,
    PAPER_L2_PARAMS,
    PAPER_MEM_PARAMS,
)
from .spec import ProgramSpec, materialize

#: Generated programs are small loops; anything beyond this is a hang.
DEFAULT_MAX_INSTRUCTIONS = 200_000

#: Relative tolerance for energy-sum conservation (pure float addition
#: noise; any real accounting leak is orders of magnitude larger).
_ENERGY_RTOL = 1e-9


def default_fuzz_model() -> EnergyModel:
    """The small hierarchy fuzzing runs against.

    Tiny caches make generated gap traffic actually evict spilled slots,
    so the probing policies (FLC/LLC) observe real misses and fire —
    under a paper-scale hierarchy every fuzz program would be
    L1-resident and the scheduler's miss paths would go untested.
    """
    config = MachineConfig(
        l1_geometry=CacheGeometry(total_lines=4, associativity=2, line_words=4),
        l2_geometry=CacheGeometry(total_lines=16, associativity=4, line_words=4),
        l1_params=PAPER_L1_PARAMS,
        l2_params=PAPER_L2_PARAMS,
        mem_params=PAPER_MEM_PARAMS,
    )
    return EnergyModel(epi=EPITable.default(), config=config)


@dataclasses.dataclass(frozen=True)
class OracleFailure:
    """One violated invariant under one policy (or at compile time)."""

    policy: str  # "*" for policy-independent failures
    kind: str  # equivalence | structure | energy | budget | exception | compile
    message: str

    def __str__(self) -> str:
        return f"[{self.policy}] {self.kind}: {self.message}"


@dataclasses.dataclass
class OracleVerdict:
    """Everything the oracle concluded about one spec."""

    spec: ProgramSpec
    policies: Tuple[str, ...]
    failures: List[OracleFailure] = dataclasses.field(default_factory=list)
    invalid: bool = False
    invalid_reason: str = ""
    instruction_count: int = 0
    slice_count: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures and not self.invalid

    @property
    def is_counterexample(self) -> bool:
        return bool(self.failures)

    def summary(self) -> str:
        if self.invalid:
            return f"invalid: {self.invalid_reason}"
        if not self.failures:
            return (
                f"ok ({self.instruction_count} instructions, "
                f"{self.slice_count} slices)"
            )
        return "; ".join(str(failure) for failure in self.failures)


def check_spec(
    spec: ProgramSpec,
    model: Optional[EnergyModel] = None,
    policies: Sequence[str] = POLICY_NAMES,
    cpu_cls: Type[AmnesicCPU] = AmnesicCPU,
    options: Optional[PassOptions] = None,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
) -> OracleVerdict:
    """Materialise *spec* and run the full differential check.

    *cpu_cls* exists so the fuzzer can validate itself: substituting a
    deliberately buggy scheduler (see :mod:`repro.fuzz.faults`) must
    turn a clean verdict into a counterexample.
    """
    verdict = OracleVerdict(spec=spec, policies=tuple(policies))
    try:
        program = materialize(spec)
    except ReproError as error:
        verdict.invalid = True
        verdict.invalid_reason = f"materialise: {error}"
        return verdict
    return check_program(
        program,
        spec=spec,
        model=model,
        policies=policies,
        cpu_cls=cpu_cls,
        options=options,
        max_instructions=max_instructions,
    )


def check_program(
    program: Program,
    spec: Optional[ProgramSpec] = None,
    model: Optional[EnergyModel] = None,
    policies: Sequence[str] = POLICY_NAMES,
    cpu_cls: Type[AmnesicCPU] = AmnesicCPU,
    options: Optional[PassOptions] = None,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
) -> OracleVerdict:
    """Differentially check an already-materialised program."""
    model = model or default_fuzz_model()
    options = options or PassOptions()
    verdict = OracleVerdict(
        spec=spec,
        policies=tuple(policies),
        instruction_count=len(program.instructions),
    )
    fail = verdict.failures.append

    # Classic baseline.  A fault here is the spec's problem, not the
    # pipeline's.
    try:
        classic = run_classic(program, model, max_instructions=max_instructions)
    except ReproError as error:
        verdict.invalid = True
        verdict.invalid_reason = f"classic: {error}"
        return verdict
    _check_account(verdict, "classic", classic.account, classic_run=True)
    classic_registers = list(classic.cpu.registers)
    classic_memory = classic.cpu.memory.snapshot()

    # Compile once; the probabilistic binary serves every policy but
    # Oracle, which gets the all-valid binary off the shared profile.
    try:
        probabilistic = compile_amnesic(
            program,
            model,
            options=dataclasses.replace(
                options, selection=SELECTION_PROBABILISTIC
            ),
        )
    except ReproError as error:
        fail(OracleFailure("*", "compile", f"probabilistic compile: {error}"))
        return verdict
    verdict.slice_count = len(probabilistic.rslices)
    _check_budget(verdict, probabilistic)

    all_valid: Optional[CompilationResult] = None
    if "Oracle" in policies:
        try:
            all_valid = compile_amnesic(
                program,
                model,
                profile=probabilistic.profile,
                options=_oracle_options(options),
            )
        except ReproError as error:
            fail(OracleFailure("Oracle", "compile", f"all-valid compile: {error}"))

    for policy_name in policies:
        compilation = all_valid if policy_name == "Oracle" else probabilistic
        if compilation is None:
            continue  # the Oracle compile already failed above
        cpu = cpu_cls(
            compilation.binary,
            model,
            make_policy(policy_name),
            max_instructions=max_instructions,
            verify=False,
        )
        try:
            cpu.run()
        except ReproError as error:
            fail(
                OracleFailure(
                    policy_name, "exception", f"{type(error).__name__}: {error}"
                )
            )
            continue
        _check_equivalence(
            verdict, policy_name, cpu, classic_registers, classic_memory
        )
        _check_structure(verdict, policy_name, cpu, classic.stats)
        _check_account(verdict, policy_name, cpu.account, classic_run=False)
    return verdict


# ----------------------------------------------------------------------
# Invariant families.
# ----------------------------------------------------------------------
def _check_equivalence(
    verdict: OracleVerdict,
    policy: str,
    cpu: AmnesicCPU,
    classic_registers: List,
    classic_memory: dict,
) -> None:
    fail = verdict.failures.append
    for index, (expected, actual) in enumerate(
        zip(classic_registers, cpu.registers)
    ):
        if expected != actual:
            fail(
                OracleFailure(
                    policy,
                    "equivalence",
                    f"r{index} = {actual!r}, classic read {expected!r}",
                )
            )
            break  # one register is enough to make the point
    memory = cpu.memory.snapshot()
    if memory != classic_memory:
        diverging = sorted(
            address
            for address in set(memory) | set(classic_memory)
            if memory.get(address) != classic_memory.get(address)
        )
        address = diverging[0]
        fail(
            OracleFailure(
                policy,
                "equivalence",
                f"memory[{address:#x}] = {memory.get(address)!r}, classic "
                f"wrote {classic_memory.get(address)!r} "
                f"({len(diverging)} diverging words)",
            )
        )


def _check_structure(
    verdict: OracleVerdict, policy: str, cpu: AmnesicCPU, classic_stats
) -> None:
    fail = verdict.failures.append

    def structural(condition: bool, message: str) -> None:
        if not condition:
            fail(OracleFailure(policy, "structure", message))

    stats = cpu.stats
    structural(
        cpu.renamer.live_mappings == 0,
        f"renamer holds {cpu.renamer.live_mappings} live mappings after HALT",
    )
    structural(
        cpu.sfile.occupancy == 0,
        f"SFile holds {cpu.sfile.occupancy} live entries after HALT",
    )
    structural(not cpu.recompute, "recompute flag still raised after HALT")
    structural(
        cpu.hist.occupancy <= cpu.hist.capacity,
        f"Hist occupancy {cpu.hist.occupancy} exceeds capacity "
        f"{cpu.hist.capacity}",
    )
    unknown = cpu.fired_slice_ids - set(cpu.binary.slices)
    structural(
        not unknown, f"fired slice ids {sorted(unknown)} absent from the binary"
    )
    outcomes = (
        stats.recomputations_fired
        + stats.recomputations_skipped
        + stats.recomputation_fallbacks
    )
    structural(
        stats.rcmp_encountered == outcomes,
        f"{stats.rcmp_encountered} RCMPs encountered but "
        f"{outcomes} outcomes recorded",
    )
    structural(
        stats.recomputation_aborts <= stats.recomputation_fallbacks,
        f"{stats.recomputation_aborts} aborts exceed "
        f"{stats.recomputation_fallbacks} fallbacks",
    )
    structural(
        stats.stores_performed == classic_stats.stores_performed,
        f"performed {stats.stores_performed} stores, classic performed "
        f"{classic_stats.stores_performed}",
    )
    structural(
        stats.loads_performed + stats.recomputations_fired
        == classic_stats.loads_performed,
        f"load conservation broken: {stats.loads_performed} performed + "
        f"{stats.recomputations_fired} swapped != classic "
        f"{classic_stats.loads_performed}",
    )


def _check_account(
    verdict: OracleVerdict, policy: str, account, classic_run: bool
) -> None:
    fail = verdict.failures.append
    breakdown = account.breakdown()
    for group, energy in breakdown.items():
        if energy < 0:
            fail(
                OracleFailure(
                    policy, "energy", f"negative {group} energy {energy}"
                )
            )
    total = account.total_energy_nj
    group_sum = sum(breakdown.values())
    if abs(total - group_sum) > _ENERGY_RTOL * max(1.0, abs(total)):
        fail(
            OracleFailure(
                policy,
                "energy",
                f"total {total} != group sum {group_sum} "
                "(energy charged outside the breakdown)",
            )
        )
    if account.total_time_ns < 0:
        fail(
            OracleFailure(
                policy, "energy", f"negative time {account.total_time_ns}"
            )
        )
    if classic_run:
        for group in (GROUP_HIST, GROUP_AMNESIC):
            if breakdown[group] != 0:
                fail(
                    OracleFailure(
                        policy,
                        "energy",
                        f"classic run charged {breakdown[group]} nJ to "
                        f"{group}",
                    )
                )


def check_backend_equivalence(
    program: Program,
    spec: Optional[ProgramSpec] = None,
    model: Optional[EnergyModel] = None,
    policies: Sequence[str] = POLICY_NAMES,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    backend: object = "fast",
) -> OracleVerdict:
    """Hold a non-classic backend to the classic interpreter, exactly.

    The same differential idea as :func:`check_program`, but the pair
    under test is the execution *backend* rather than the execution
    *model*: the classic program and every per-policy amnesic run are
    executed under both backends and compared on final registers, the
    memory image, RunStats, hierarchy counters, the per-group energy
    breakdown, and modeled time.  Unlike amnesic-vs-classic (where only
    architectural state must match), the two backends run the *same*
    semantics, so every comparison is exact — including float energy
    totals, which the fast backend must accumulate in the classic charge
    order.  Faults count too: a program that faults under classic must
    fault under fast with the same exception type, message, and pc.

    Failures carry kind ``"backend"``; the policy field is ``classic``
    for the plain-interpreter comparison and the policy name for the
    amnesic ones.

    ``backend`` picks the backend under test: a registry name
    (``"fast"``, ``"fast-batched"``) or a ``Backend`` instance — the
    latter is how the broken-batcher proof tests hand the oracle a
    deliberately wrong implementation.
    """
    from ..core.backend import BACKENDS, Backend

    if isinstance(backend, str):
        backend = BACKENDS[backend]
    if not isinstance(backend, Backend):
        raise TypeError(f"backend must be a name or Backend, got {backend!r}")
    under_test: Backend = backend
    model = model or default_fuzz_model()
    verdict = OracleVerdict(
        spec=spec,
        policies=tuple(policies),
        instruction_count=len(program.instructions),
    )
    fail = verdict.failures.append

    def run_both(label: str, make_cpu) -> Optional[Tuple]:
        """Run under both backends; report fault divergence; return CPUs."""
        outcomes = []
        for pick in (BACKENDS["classic"], under_test):
            cpu = make_cpu(pick)
            error = None
            try:
                cpu.run()
            except ReproError as caught:
                error = f"{type(caught).__name__}: {caught}"
            outcomes.append((cpu, error))
        (classic_cpu, classic_error), (fast_cpu, fast_error) = outcomes
        if classic_error != fast_error:
            fail(
                OracleFailure(
                    label,
                    "backend",
                    f"classic raised {classic_error!r}, "
                    f"{under_test.name} raised {fast_error!r}",
                )
            )
            return None
        return classic_cpu, fast_cpu, classic_error

    def compare_state(label: str, classic_cpu, fast_cpu) -> None:
        def exact(what: str, expected, actual) -> None:
            if expected != actual:
                fail(
                    OracleFailure(
                        label,
                        "backend",
                        f"{what} diverged: classic {expected!r}, "
                        f"{under_test.name} {actual!r}",
                    )
                )

        exact("registers", classic_cpu.registers, fast_cpu.registers)
        exact(
            "memory", classic_cpu.memory.snapshot(), fast_cpu.memory.snapshot()
        )
        exact("pc", classic_cpu.pc, fast_cpu.pc)
        exact(
            "dynamic instructions",
            classic_cpu.dynamic_count,
            fast_cpu.dynamic_count,
        )
        exact(
            "run stats",
            dataclasses.asdict(classic_cpu.stats),
            dataclasses.asdict(fast_cpu.stats),
        )
        exact(
            "hierarchy stats",
            dataclasses.asdict(classic_cpu.hierarchy.stats),
            dataclasses.asdict(fast_cpu.hierarchy.stats),
        )
        for cache in ("l1", "l2"):
            exact(
                f"{cache} state",
                getattr(classic_cpu.hierarchy, cache).observe(),
                getattr(fast_cpu.hierarchy, cache).observe(),
            )
        exact(
            "energy breakdown",
            classic_cpu.account.breakdown(),
            fast_cpu.account.breakdown(),
        )
        exact(
            "modeled time",
            classic_cpu.account.total_time_ns,
            fast_cpu.account.total_time_ns,
        )
        if hasattr(classic_cpu, "hist"):
            exact(
                "fired slices",
                sorted(classic_cpu.fired_slice_ids),
                sorted(fast_cpu.fired_slice_ids),
            )
            for structure in ("hist", "sfile", "ibuff"):
                exact(
                    f"{structure} state",
                    getattr(classic_cpu, structure).observe(),
                    getattr(fast_cpu, structure).observe(),
                )

    # The plain-interpreter pair.
    pair = run_both(
        "classic",
        lambda backend: backend.cpu_cls(
            program, model, max_instructions=max_instructions
        ),
    )
    if pair is not None:
        classic_cpu, fast_cpu, classic_error = pair
        compare_state("classic", classic_cpu, fast_cpu)
        if classic_error is not None:
            # Fault parity verified; the compiled comparisons below need
            # a clean classic run to mean anything.
            verdict.invalid = True
            verdict.invalid_reason = f"classic: {classic_error}"
            return verdict
    else:
        return verdict

    # The amnesic pairs, one per policy, over the shared binaries.
    try:
        probabilistic = compile_amnesic(
            program,
            model,
            options=PassOptions(selection=SELECTION_PROBABILISTIC),
        )
    except ReproError as error:
        fail(OracleFailure("*", "compile", f"probabilistic compile: {error}"))
        return verdict
    verdict.slice_count = len(probabilistic.rslices)
    all_valid: Optional[CompilationResult] = None
    if "Oracle" in policies:
        try:
            all_valid = compile_amnesic(
                program,
                model,
                profile=probabilistic.profile,
                options=_oracle_options(PassOptions()),
            )
        except ReproError as error:
            fail(OracleFailure("Oracle", "compile", f"all-valid compile: {error}"))

    for policy_name in policies:
        compilation = all_valid if policy_name == "Oracle" else probabilistic
        if compilation is None:
            continue
        pair = run_both(
            policy_name,
            lambda backend: backend.amnesic_cls(
                compilation.binary,
                model,
                make_policy(policy_name),
                max_instructions=max_instructions,
                verify=False,
            ),
        )
        if pair is not None:
            compare_state(policy_name, pair[0], pair[1])
    return verdict


def _check_budget(verdict: OracleVerdict, compilation: CompilationResult) -> None:
    """Every probabilistically selected slice must beat its load estimate."""
    for rslice in compilation.rslices:
        if rslice.selection_cost.energy_nj >= rslice.estimated_load_cost.energy_nj:
            verdict.failures.append(
                OracleFailure(
                    "*",
                    "budget",
                    f"slice {rslice.slice_id} selected with cost "
                    f"{rslice.selection_cost.energy_nj:.3f} nJ >= estimated "
                    f"load {rslice.estimated_load_cost.energy_nj:.3f} nJ",
                )
            )


__all__ = [
    "DEFAULT_MAX_INSTRUCTIONS",
    "OracleFailure",
    "OracleVerdict",
    "check_backend_equivalence",
    "check_program",
    "check_spec",
    "default_fuzz_model",
]
