"""Fuzz campaigns: generate → check → shrink → bank, plus corpus replay.

:func:`run_fuzz` is what ``repro fuzz`` invokes: it walks the
deterministic program stream of a campaign seed, feeds each spec to the
differential oracle, greedily shrinks any failure, and banks the
minimised counterexample into the corpus directory (deduplicated by
spec digest).  Progress is reported through the existing telemetry
registry — ``fuzz.programs``, ``fuzz.oracle.mismatches``, and
``fuzz.shrink.steps`` are the counters the ISSUE names — so
``repro fuzz --metrics`` summarises a campaign with no extra plumbing.

:func:`replay_corpus` is the CI half: re-run every committed entry and
report any that no longer pass.
"""

from __future__ import annotations

import dataclasses
import time
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Type

from ..core.amnesic_cpu import AmnesicCPU
from ..core.policies import POLICY_NAMES
from ..energy import EnergyModel
from ..telemetry.runtime import get_telemetry
from .corpus import EXPECT_CLASSIC_FAULT, CorpusEntry, load_corpus, save_entry
from .generator import program_seed, random_spec
from .oracle import (
    DEFAULT_MAX_INSTRUCTIONS,
    OracleVerdict,
    check_spec,
    default_fuzz_model,
)
from .shrinker import shrink_spec
from .spec import ProgramSpec


@dataclasses.dataclass
class FuzzConfig:
    """Everything one campaign needs (and nothing process-global)."""

    seed: int = 0
    iterations: int = 100
    time_budget_s: Optional[float] = None
    corpus_dir: Optional[str] = None
    policies: Tuple[str, ...] = POLICY_NAMES
    shrink: bool = True
    max_shrink_attempts: int = 500
    max_counterexamples: int = 5
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS
    #: Swappable scheduler implementation — the oracle-validation tests
    #: run campaigns against deliberately broken CPUs.
    cpu_cls: Type[AmnesicCPU] = AmnesicCPU


@dataclasses.dataclass
class Counterexample:
    """One failing program, before and after reduction."""

    original: ProgramSpec
    shrunk: ProgramSpec
    verdict: OracleVerdict  # the shrunk spec's failures
    shrink_steps: int
    shrink_attempts: int
    corpus_path: Optional[str] = None

    def to_json(self) -> dict:
        return {
            "original": self.original.to_json(),
            "shrunk": self.shrunk.to_json(),
            "failures": [str(failure) for failure in self.verdict.failures],
            "shrink_steps": self.shrink_steps,
            "shrink_attempts": self.shrink_attempts,
            "corpus_path": self.corpus_path,
        }


@dataclasses.dataclass
class FuzzResult:
    """Campaign totals: what ran, what failed, what was banked."""

    config: FuzzConfig
    programs: int = 0
    invalid: int = 0
    elapsed_s: float = 0.0
    stopped_early: str = ""  # "time-budget" | "max-counterexamples" | ""
    counterexamples: List[Counterexample] = dataclasses.field(
        default_factory=list
    )

    @property
    def ok(self) -> bool:
        return not self.counterexamples

    def to_json(self) -> dict:
        return {
            "seed": self.config.seed,
            "iterations": self.config.iterations,
            "policies": list(self.config.policies),
            "programs": self.programs,
            "invalid": self.invalid,
            "elapsed_s": round(self.elapsed_s, 3),
            "stopped_early": self.stopped_early,
            "counterexamples": [cx.to_json() for cx in self.counterexamples],
        }


def run_fuzz(
    config: FuzzConfig, model: Optional[EnergyModel] = None
) -> FuzzResult:
    """Run one deterministic fuzz campaign."""
    model = model or default_fuzz_model()
    telemetry = get_telemetry()
    result = FuzzResult(config=config)
    banked_digests = set()
    if config.corpus_dir:
        banked_digests = {
            entry.spec.digest() for entry in load_corpus(config.corpus_dir)
        }
    started = time.monotonic()

    def check(spec: ProgramSpec) -> OracleVerdict:
        return check_spec(
            spec,
            model=model,
            policies=config.policies,
            cpu_cls=config.cpu_cls,
            max_instructions=config.max_instructions,
        )

    with telemetry.span(
        "fuzz.campaign", seed=config.seed, iterations=config.iterations
    ):
        for index in range(config.iterations):
            if (
                config.time_budget_s is not None
                and time.monotonic() - started >= config.time_budget_s
            ):
                result.stopped_early = "time-budget"
                break
            spec = random_spec(program_seed(config.seed, index))
            verdict = check(spec)
            result.programs += 1
            telemetry.counter("fuzz.programs").inc()
            telemetry.histogram("fuzz.program_instructions").observe(
                verdict.instruction_count
            )
            if verdict.invalid:
                result.invalid += 1
                telemetry.counter("fuzz.invalid").inc()
                continue
            if verdict.ok:
                continue

            telemetry.counter("fuzz.oracle.mismatches").inc(
                len(verdict.failures)
            )
            counterexample = _reduce_and_bank(
                spec, verdict, check, config, banked_digests
            )
            telemetry.counter("fuzz.shrink.steps").inc(
                counterexample.shrink_steps
            )
            telemetry.event(
                "fuzz.counterexample",
                seed=spec.seed,
                failures=[str(f) for f in counterexample.verdict.failures],
                corpus_path=counterexample.corpus_path,
            )
            result.counterexamples.append(counterexample)
            if len(result.counterexamples) >= config.max_counterexamples:
                result.stopped_early = "max-counterexamples"
                break
    result.elapsed_s = time.monotonic() - started
    return result


def _reduce_and_bank(
    spec: ProgramSpec,
    verdict: OracleVerdict,
    check,
    config: FuzzConfig,
    banked_digests: set,
) -> Counterexample:
    """Shrink a failing spec and persist the reduction to the corpus."""
    shrunk, steps, attempts = spec, 0, 0
    final_verdict = verdict
    if config.shrink:
        reduction = shrink_spec(
            spec,
            lambda candidate: check(candidate).is_counterexample,
            max_attempts=config.max_shrink_attempts,
        )
        shrunk, steps, attempts = (
            reduction.spec, reduction.steps, reduction.attempts,
        )
        if steps:
            final_verdict = check(shrunk)

    corpus_path = None
    if config.corpus_dir:
        digest = shrunk.digest()
        if digest not in banked_digests:
            banked_digests.add(digest)
            entry = CorpusEntry(
                spec=shrunk.replace(name=f"cx-{digest}"),
                description="; ".join(
                    str(failure) for failure in final_verdict.failures
                ),
                source=(
                    f"repro fuzz --seed {config.seed} "
                    f"(program seed {spec.seed})"
                ),
            )
            corpus_path = str(save_entry(config.corpus_dir, entry))
            get_telemetry().counter("fuzz.corpus.saved").inc()
    return Counterexample(
        original=spec,
        shrunk=shrunk,
        verdict=final_verdict,
        shrink_steps=steps,
        shrink_attempts=attempts,
        corpus_path=corpus_path,
    )


def entry_satisfied(entry: CorpusEntry, verdict: OracleVerdict) -> bool:
    """Did *verdict* match the entry's committed expectation?

    Most entries expect a clean oracle pass.  ``expect="classic-fault"``
    entries (budget exhaustion, scheduled traps) exist to pin fault
    parity: the classic run faults, the oracle reports *invalid*, and
    success means it got there with zero failures — a backend that
    faults differently produces a failure before the invalid marker.
    """
    if entry.expect == EXPECT_CLASSIC_FAULT:
        return verdict.invalid and not verdict.failures
    return verdict.ok


@dataclasses.dataclass
class ReplayReport:
    """Verdicts of one corpus replay, failures first when rendering."""

    verdicts: List[Tuple[CorpusEntry, OracleVerdict]]

    @property
    def failures(self) -> List[Tuple[CorpusEntry, OracleVerdict]]:
        return [
            (e, v) for e, v in self.verdicts if not entry_satisfied(e, v)
        ]

    @property
    def ok(self) -> bool:
        return not self.failures


def replay_corpus(
    directory: str,
    model: Optional[EnergyModel] = None,
    policies: Optional[Sequence[str]] = None,
    cpu_cls: Type[AmnesicCPU] = AmnesicCPU,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
) -> ReplayReport:
    """Re-run every committed corpus entry through the oracle."""
    if not Path(directory).is_dir():
        raise FileNotFoundError(f"corpus directory {directory} does not exist")
    model = model or default_fuzz_model()
    telemetry = get_telemetry()
    verdicts: List[Tuple[CorpusEntry, OracleVerdict]] = []
    for entry in load_corpus(directory):
        verdict = check_spec(
            entry.spec,
            model=model,
            policies=policies or entry.policies or POLICY_NAMES,
            cpu_cls=cpu_cls,
            max_instructions=entry.max_instructions or max_instructions,
        )
        telemetry.counter(
            "fuzz.corpus.replayed",
            result="ok" if entry_satisfied(entry, verdict) else "failed",
        ).inc()
        verdicts.append((entry, verdict))
    return ReplayReport(verdicts=verdicts)


__all__ = [
    "Counterexample",
    "FuzzConfig",
    "FuzzResult",
    "ReplayReport",
    "replay_corpus",
    "run_fuzz",
]
