"""Seeded random generation of :class:`~repro.fuzz.spec.ProgramSpec`.

Generation is structured around *spill groups* — produce a value, spill
it, optionally clobber the register or pollute the cache, then reload —
because that is the shape the amnesic compiler transforms: the reload is
a swap candidate whose producer template is the group's arithmetic
chain.  Random extras (aliasing stores, loop-carried folds) are layered
on top so groups interact.

Determinism contract: ``random_spec(seed)`` depends only on *seed* (one
``random.Random(seed)`` drives every draw, and nothing reads global
state), so a campaign seed reproduces the exact program sequence on any
platform — the property the CLI acceptance test pins down.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from .spec import (
    Carry,
    Clobber,
    Gap,
    Produce,
    ProgramSpec,
    Reload,
    Statement,
    Store,
    Trap,
)

#: Temps the generator spills from (``v`` is reserved for reloads).
_SPILL_TEMPS = ("t0", "t1", "t2", "t3")

#: Chain opcodes with generation weights.  Shifts get small immediates
#: (below) so values stay informative rather than saturating.
_CHAIN_OPS = (
    "add", "add", "sub", "mul", "mul", "xor", "xor",
    "or", "and", "min", "max", "shl", "shr",
)

#: Multiplier used to derive per-program seeds from a campaign seed
#: (prime, so consecutive campaigns do not share program streams).
PROGRAM_SEED_STRIDE = 1_000_003


def program_seed(campaign_seed: int, index: int) -> int:
    """The seed of the *index*-th program of a campaign."""
    return campaign_seed * PROGRAM_SEED_STRIDE + index


def _draw_imm(rng: random.Random, op: str) -> int:
    if op in ("shl", "shr"):
        return rng.randint(1, 8)
    if op == "and":
        return rng.randint(1, (1 << 16) - 1)
    if op == "mul":
        return rng.randint(2, 1 << 10)
    return rng.randint(1, 1 << 16)


def _draw_chain(rng: random.Random, min_len: int, max_len: int) -> Tuple:
    length = rng.randint(min_len, max_len)
    chain = []
    for _ in range(length):
        op = rng.choice(_CHAIN_OPS)
        chain.append((op, _draw_imm(rng, op)))
    return tuple(chain)


def random_spec(
    seed: int,
    *,
    name: Optional[str] = None,
    max_groups: int = 3,
) -> ProgramSpec:
    """Draw one program spec deterministically from *seed*."""
    rng = random.Random(seed)
    iterations = rng.randint(3, 10)
    slot_words = rng.choice((8, 8, 16, 64))
    statements: List[Statement] = []
    produced: List[str] = []

    for _ in range(rng.randint(1, max_groups)):
        temp = rng.choice(_SPILL_TEMPS)
        # Sources: the loop index (recomputable leaf), the read-only
        # table (checkpoint-load leaf), or an earlier temp (deep tree).
        roll = rng.random()
        if roll < 0.40:
            source, min_len = "index", 1
        elif roll < 0.75 or not produced:
            source, min_len = "roload", 0
        else:
            source, min_len = rng.choice(produced), 0
        statements.append(
            Produce(
                temp=temp,
                source=source,
                chain=_draw_chain(rng, min_len, 4),
                ro_stride=rng.choice((0, 1, 1, 2, 3)),
            )
        )
        produced.append(temp)

        stride = rng.choice((0, 0, 0, 1, 1, 2, 3))
        offset = rng.randrange(slot_words)
        statements.append(Store(temp=temp, offset=offset, stride=stride))

        # Aliasing store: another temp overwrites the same slot before
        # the reload, so the reload's true producer is the *second*
        # store (store-to-load aliasing into a slice).
        if produced and rng.random() < 0.25:
            statements.append(
                Store(
                    temp=rng.choice(produced), offset=offset, stride=stride
                )
            )
        if rng.random() < 0.45:
            statements.append(
                Clobber(temp=temp, value=rng.randint(1, (1 << 16) - 1))
            )
        if rng.random() < 0.55:
            statements.append(
                Gap(count=rng.randint(1, 8), stride=rng.randint(1, 5))
            )
        statements.append(
            Reload(
                offset=offset,
                stride=stride,
                accumulate=rng.random() < 0.85,
            )
        )

    if produced and rng.random() < 0.35:
        statements.append(
            Carry(
                temp=rng.choice(_SPILL_TEMPS),
                source=rng.choice(produced),
                op=rng.choice(("add", "xor", "max")),
            )
        )

    # Occasionally schedule an arithmetic fault inside the loop body —
    # sometimes live (at < iterations: the classic run faults mid-region
    # and every backend must match it exactly), sometimes dormant (the
    # DIV still forces the batcher's faulting-region fallback).
    if produced and rng.random() < 0.12:
        live = rng.random() < 0.5
        at = (
            rng.randrange(iterations)
            if live
            else iterations + rng.randint(0, 3)
        )
        statements.append(Trap(temp=rng.choice(produced), at=at))

    return ProgramSpec(
        name=name or f"fuzz-{seed}",
        iterations=iterations,
        slot_words=slot_words,
        statements=tuple(statements),
        emit_output=rng.random() < 0.9,
        seed=seed,
    )


def generate_specs(campaign_seed: int, count: int) -> List[ProgramSpec]:
    """The first *count* specs of the campaign seeded by *campaign_seed*."""
    return [
        random_spec(program_seed(campaign_seed, index))
        for index in range(count)
    ]
