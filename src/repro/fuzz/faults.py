"""Deliberately broken schedulers and batchers for validating the oracle.

A differential fuzzer that has never caught a bug proves nothing.  These
CPU variants inject known defects so the test suite can assert the whole
loop end-to-end: the generator produces a program that exercises the
broken path, the oracle flags the divergence, and the shrinker reduces
it to a minimal counterexample.  They are shipped in the package (not
buried in tests) so future scheduler/backend work can re-run the same
mutation check against new policies.
"""

from __future__ import annotations

from ..core.amnesic_cpu import AmnesicCPU
from ..core.hist import HistoryTable
from ..machine.cpu import CPU
from ..machine.fastpath import BatchedExecutionMixin


class _ZeroReadHist(HistoryTable):
    """A history table whose reads skip the lookup and fabricate zeros."""

    def read(self, slice_id: int, leaf_id: int, slot: int):
        super().read(slice_id, leaf_id, slot)  # keep LRU/accounting honest
        return 0


class SkipHistReadCPU(AmnesicCPU):
    """Bug: slice traversal skips the Hist lookup for checkpointed leaves.

    Readiness checks (``has``) still pass and REC still records, so the
    scheduler happily fires — but every checkpoint-supplied operand
    arrives as zero instead of the recorded value.  Any fired slice with
    a Hist leaf whose true value is non-zero recomputes the wrong value,
    which (with ``verify=False``) silently corrupts the destination
    register and everything downstream of it.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.hist = _ZeroReadHist(self.hist.capacity)


class EagerFireCPU(AmnesicCPU):
    """Bug: fires without checking slice readiness, on one SFile entry.

    The readiness check exists to guarantee a slice's scratch demand
    fits the SFile before traversal begins; skipping it means any slice
    needing more than the single available entry exhausts the scratch
    file mid-traversal and faults (:class:`~repro.errors.SchedulerError`)
    instead of falling back to the load.  Useful for checking that the
    oracle treats amnesic-side exceptions as failures, not crashes.
    """

    def __init__(self, *args, **kwargs):
        kwargs["sfile_capacity"] = 1
        super().__init__(*args, **kwargs)

    def _slice_ready(self, info) -> bool:
        return True


class _LateFlushMixin(BatchedExecutionMixin):
    """Bug: a fused region's count flush stops short across a fault.

    Classic counts an instruction *before* executing it, so when element
    ``completed`` of a fused region faults, that element must still be
    counted.  This batcher flushes only the elements that finished —
    exactly the off-by-one a hand-rolled batching loop is most likely to
    get wrong — so ``dynamic_instructions`` and ``by_category`` come up
    one short on any mid-region fault while registers, memory, and the
    fault itself stay classic-identical.  The equivalence oracle and the
    fastpath-region suite must both catch it.
    """

    @staticmethod
    def _region_partial_flush(counts, start, completed):
        for offset in range(1, completed):
            counts[start + offset] += 1


class LateFlushBatchedCPU(_LateFlushMixin, CPU):
    """The broken batcher over classic semantics."""


class LateFlushBatchedAmnesicCPU(_LateFlushMixin, AmnesicCPU):
    """The broken batcher over amnesic binaries."""


__all__ = [
    "EagerFireCPU",
    "LateFlushBatchedAmnesicCPU",
    "LateFlushBatchedCPU",
    "SkipHistReadCPU",
]
