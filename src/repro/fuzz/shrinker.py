"""Greedy reduction of failing specs to minimal counterexamples.

The shrinker works at the spec level — deleting statements, truncating
chains, and simplifying constants — never on raw instructions, so the
result is a readable scenario ("store, clobber, reload over 2
iterations") rather than a soup of opcodes.  Reduction is ddmin-style
greedy descent to a fixpoint: try candidate simplifications in order of
expected payoff, accept any candidate on which the failure predicate
still holds, and restart until nothing shrinks.

The failure predicate is a black box (usually "the oracle still reports
a failure with the same buggy CPU class"), so the shrinker never needs
to know *why* the program fails — only that it still does.  Candidates
that no longer materialise (an orphaned reference after a deletion) are
simply not failures; :func:`shrink_spec` treats predicate exceptions on
a candidate as "does not fail" and moves on.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator, List

from .spec import Gap, Produce, ProgramSpec, Reload, Statement, Store

#: Keep at least this many loop iterations while shrinking: the compiler
#: ignores loads with fewer dynamic instances than ``min_instances`` (2
#: by default), so shrinking to one iteration makes every slice vanish
#: and the bug with it.
MIN_ITERATIONS = 2


@dataclasses.dataclass
class ShrinkResult:
    """The reduced spec plus how hard the shrinker worked."""

    spec: ProgramSpec
    steps: int  # accepted simplifications
    attempts: int  # candidates evaluated


def _replaced(
    spec: ProgramSpec, index: int, statement: Statement
) -> ProgramSpec:
    statements = list(spec.statements)
    statements[index] = statement
    return spec.replace(statements=tuple(statements))


def _candidates(spec: ProgramSpec) -> Iterator[ProgramSpec]:
    """Simplifications of *spec*, highest expected payoff first."""
    statements = spec.statements

    # 1. Delete contiguous statement chunks, large chunks first (ddmin).
    size = len(statements) // 2
    while size >= 1:
        for start in range(0, len(statements) - size + 1):
            remaining = statements[:start] + statements[start + size:]
            if remaining:
                yield spec.replace(statements=remaining)
        size //= 2

    # 2. Fewer loop iterations (bounded below by MIN_ITERATIONS).
    for iterations in (MIN_ITERATIONS, spec.iterations // 2, spec.iterations - 1):
        if MIN_ITERATIONS <= iterations < spec.iterations:
            yield spec.replace(iterations=iterations)

    # 3. Drop the output store.
    if spec.emit_output:
        yield spec.replace(emit_output=False)

    # 4. Shrink the slot region (fewer address bits in play).
    if spec.slot_words > 8:
        yield spec.replace(slot_words=8)

    # 5. Per-statement simplifications.
    for index, statement in enumerate(statements):
        if isinstance(statement, Produce):
            chain = statement.chain
            for length in (0, len(chain) // 2, len(chain) - 1):
                if 0 <= length < len(chain):
                    yield _replaced(
                        spec,
                        index,
                        dataclasses.replace(statement, chain=chain[:length]),
                    )
            if statement.ro_stride > 0:
                yield _replaced(
                    spec, index, dataclasses.replace(statement, ro_stride=0)
                )
            if statement.source != "index":
                yield _replaced(
                    spec, index, dataclasses.replace(statement, source="index")
                )
        elif isinstance(statement, (Store, Reload)):
            if statement.stride != 0:
                yield _replaced(
                    spec, index, dataclasses.replace(statement, stride=0)
                )
            if statement.offset != 0:
                yield _replaced(
                    spec, index, dataclasses.replace(statement, offset=0)
                )
            if isinstance(statement, Reload) and statement.accumulate:
                yield _replaced(
                    spec,
                    index,
                    dataclasses.replace(statement, accumulate=False),
                )
        elif isinstance(statement, Gap):
            for count in (1, statement.count // 2):
                if 1 <= count < statement.count:
                    yield _replaced(
                        spec, index, dataclasses.replace(statement, count=count)
                    )


def shrink_spec(
    spec: ProgramSpec,
    still_fails: Callable[[ProgramSpec], bool],
    max_attempts: int = 500,
) -> ShrinkResult:
    """Reduce *spec* while ``still_fails`` holds; greedy, to a fixpoint.

    *still_fails* is called on each candidate; any exception it raises
    counts as "candidate does not fail" so un-materialisable candidates
    are skipped rather than aborting the reduction.  *max_attempts*
    bounds total predicate evaluations — shrinking is best-effort and
    the original failure is preserved regardless.
    """
    current = spec
    steps = 0
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _candidates(current):
            if attempts >= max_attempts:
                break
            attempts += 1
            try:
                failing = still_fails(candidate)
            except Exception:
                failing = False
            if failing:
                current = candidate.replace(name=f"{spec.name}-shrunk")
                steps += 1
                improved = True
                break  # restart candidate generation from the smaller spec
    return ShrinkResult(spec=current, steps=steps, attempts=attempts)


def instruction_count(spec: ProgramSpec) -> int:
    """Static instruction count of the materialised spec."""
    from .spec import materialize

    return len(materialize(spec).instructions)


def candidate_specs(spec: ProgramSpec) -> List[ProgramSpec]:
    """All one-step simplifications of *spec* (test/debug helper)."""
    return list(_candidates(spec))


__all__ = [
    "MIN_ITERATIONS",
    "ShrinkResult",
    "candidate_specs",
    "instruction_count",
    "shrink_spec",
]
