"""The replayable regression corpus: one JSON file per spec.

Every counterexample the fuzzer ever finds — and every hand-curated
tricky shape — lives in ``tests/corpus/*.json``.  CI replays the whole
directory through the oracle on every run, so a scheduler regression
that re-breaks an old counterexample fails immediately instead of
waiting for the nightly fuzz job to rediscover it.

Entries are written atomically (temp file + ``os.replace``) so a fuzz
campaign interrupted mid-save never leaves a truncated JSON file that
would poison future replays.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import os
import tempfile
from pathlib import Path
from typing import Iterable, List, Optional, Tuple, Union

from ..errors import FuzzError
from .spec import ProgramSpec

#: Bumped when the entry envelope changes incompatibly.  The
#: ``max_instructions`` / ``expect`` fields are additive (readers
#: default them), so they did not bump it.
CORPUS_FORMAT_VERSION = 1

#: Replay expectations (:attr:`CorpusEntry.expect`).
EXPECT_OK = "ok"
EXPECT_CLASSIC_FAULT = "classic-fault"


@dataclasses.dataclass(frozen=True)
class CorpusEntry:
    """One committed spec plus the context a future reader needs."""

    spec: ProgramSpec
    description: str = ""
    source: str = ""  # e.g. "repro fuzz --seed 7" or "hand-written"
    #: Restrict replay to these policies (None = all).
    policies: Optional[Tuple[str, ...]] = None
    #: Override the replay instruction budget (None = the replay
    #: default).  Budget-exhaustion entries need a budget small enough
    #: to trip mid-run.
    max_instructions: Optional[int] = None
    #: What a healthy replay looks like: ``"ok"`` (the oracle passes) or
    #: ``"classic-fault"`` (the classic run itself faults — the entry
    #: exists to pin fault parity, so an *invalid* verdict is success).
    expect: str = EXPECT_OK

    @property
    def name(self) -> str:
        return self.spec.name

    def to_json(self) -> dict:
        return {
            "format": CORPUS_FORMAT_VERSION,
            "description": self.description,
            "source": self.source,
            "policies": list(self.policies) if self.policies else None,
            "max_instructions": self.max_instructions,
            "expect": self.expect,
            "spec": self.spec.to_json(),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "CorpusEntry":
        version = payload.get("format")
        if version != CORPUS_FORMAT_VERSION:
            raise FuzzError(
                f"unsupported corpus format {version!r} "
                f"(expected {CORPUS_FORMAT_VERSION})"
            )
        policies = payload.get("policies")
        expect = str(payload.get("expect", EXPECT_OK))
        if expect not in (EXPECT_OK, EXPECT_CLASSIC_FAULT):
            raise FuzzError(f"unknown corpus expectation {expect!r}")
        max_instructions = payload.get("max_instructions")
        return cls(
            spec=ProgramSpec.from_json(payload["spec"]),
            description=str(payload.get("description", "")),
            source=str(payload.get("source", "")),
            policies=tuple(policies) if policies else None,
            max_instructions=(
                int(max_instructions) if max_instructions is not None else None
            ),
            expect=expect,
        )


def entry_filename(entry: CorpusEntry) -> str:
    """``<name>-<digest>.json`` — readable and collision-free."""
    return f"{entry.spec.name}-{entry.spec.digest()}.json"


def save_entry(directory: Union[str, Path], entry: CorpusEntry) -> Path:
    """Atomically write *entry* into *directory*; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / entry_filename(entry)
    payload = json.dumps(entry.to_json(), indent=2, sort_keys=True) + "\n"
    fd, temp_name = tempfile.mkstemp(
        dir=str(directory), prefix=".tmp-", suffix=".json"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(payload)
        os.replace(temp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(temp_name)
        raise
    return path


def load_entry(path: Union[str, Path]) -> CorpusEntry:
    """Load one corpus entry; malformed files raise :class:`FuzzError`."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        raise FuzzError(f"unreadable corpus entry {path}: {error}") from None
    return CorpusEntry.from_json(payload)


def corpus_paths(directory: Union[str, Path]) -> List[Path]:
    """Every committed entry, in deterministic (sorted) order."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(
        path for path in directory.glob("*.json") if not path.name.startswith(".")
    )


def load_corpus(directory: Union[str, Path]) -> List[CorpusEntry]:
    """Load every entry in *directory* (sorted by filename).

    A committed entry that fails to parse is a repository bug, so this
    raises rather than skipping: silently dropping a regression test is
    worse than a loud CI failure.
    """
    return [load_entry(path) for path in corpus_paths(directory)]


def digests(entries: Iterable[CorpusEntry]) -> set:
    """Spec digests of *entries* (for duplicate suppression)."""
    return {entry.spec.digest() for entry in entries}


__all__ = [
    "CORPUS_FORMAT_VERSION",
    "EXPECT_CLASSIC_FAULT",
    "EXPECT_OK",
    "CorpusEntry",
    "corpus_paths",
    "digests",
    "entry_filename",
    "load_corpus",
    "load_entry",
    "save_entry",
]
