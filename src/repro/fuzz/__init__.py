"""Differential fuzzing of the amnesic pipeline.

Seeded program generation, an amnesic-vs-classic equivalence oracle, a
greedy spec shrinker, and the replayable regression corpus behind
``repro fuzz`` and the CI corpus-replay tests.
"""

from .corpus import CorpusEntry, load_corpus, load_entry, save_entry
from .faults import (
    EagerFireCPU,
    LateFlushBatchedAmnesicCPU,
    LateFlushBatchedCPU,
    SkipHistReadCPU,
)
from .generator import generate_specs, program_seed, random_spec
from .oracle import (
    OracleFailure,
    OracleVerdict,
    check_backend_equivalence,
    check_program,
    check_spec,
    default_fuzz_model,
)
from .runner import (
    Counterexample,
    FuzzConfig,
    FuzzResult,
    ReplayReport,
    replay_corpus,
    run_fuzz,
)
from .shrinker import ShrinkResult, instruction_count, shrink_spec
from .spec import (
    Carry,
    Clobber,
    Gap,
    Produce,
    ProgramSpec,
    Reload,
    Store,
    Trap,
    materialize,
    validate_spec,
)

__all__ = [
    "Carry",
    "Clobber",
    "CorpusEntry",
    "Counterexample",
    "EagerFireCPU",
    "FuzzConfig",
    "FuzzResult",
    "Gap",
    "LateFlushBatchedAmnesicCPU",
    "LateFlushBatchedCPU",
    "OracleFailure",
    "OracleVerdict",
    "Produce",
    "ProgramSpec",
    "Reload",
    "ReplayReport",
    "ShrinkResult",
    "SkipHistReadCPU",
    "Store",
    "Trap",
    "check_backend_equivalence",
    "check_program",
    "check_spec",
    "default_fuzz_model",
    "generate_specs",
    "instruction_count",
    "load_corpus",
    "load_entry",
    "materialize",
    "program_seed",
    "random_spec",
    "replay_corpus",
    "run_fuzz",
    "save_entry",
    "shrink_spec",
    "validate_spec",
]
