"""AMNESIAC reproduction: trading computation for communication.

A full-system reproduction of *AMNESIAC: Amnesic Automatic Computer*
(Akturk & Karpuzcu, ASPLOS 2017): a RISC-style ISA and machine
simulator, an energy/timing model, a profile-guided amnesic compiler
that swaps energy-hungry loads for recomputation slices, the amnesic
microarchitecture (SFile/Renamer/Hist/IBuff), runtime firing policies,
a calibrated 33-benchmark workload suite, and a harness regenerating
every table and figure of the paper's evaluation.

Quickstart::

    from repro import ProgramBuilder, compare

    builder = ProgramBuilder("demo")
    # ... write a kernel (see examples/quickstart.py) ...
    result = compare(builder.build(), policy="FLC")
    print(f"EDP gain: {result.edp_gain_percent:.1f}%")
"""

from .compiler import (
    CompilationResult,
    PassOptions,
    RSlice,
    compile_amnesic,
)
from .core import (
    POLICY_NAMES,
    AmnesicCPU,
    ExecutionOutcome,
    PolicyComparison,
    compare,
    evaluate_policies,
    make_policy,
    run_amnesic,
    run_classic,
)
from .energy import EnergyModel, EPITable, paper_energy_model
from .errors import ReproError
from .isa import Opcode, Program, ProgramBuilder
from .machine import CPU, Level, MachineConfig, default_config, paper_geometry
from .telemetry import Telemetry, get_telemetry, telemetry_session
from .trace import profile_program

__version__ = "1.0.0"

__all__ = [
    "AmnesicCPU",
    "CPU",
    "CompilationResult",
    "EPITable",
    "EnergyModel",
    "ExecutionOutcome",
    "Level",
    "MachineConfig",
    "Opcode",
    "POLICY_NAMES",
    "PassOptions",
    "PolicyComparison",
    "Program",
    "ProgramBuilder",
    "RSlice",
    "ReproError",
    "compare",
    "compile_amnesic",
    "default_config",
    "evaluate_policies",
    "make_policy",
    "paper_energy_model",
    "paper_geometry",
    "profile_program",
    "run_amnesic",
    "run_classic",
    "Telemetry",
    "get_telemetry",
    "telemetry_session",
    "__version__",
]
