"""Trace summarisation: instruction mix, working sets, reuse distances.

These are the observables used to sanity-check workload calibration
against the cache geometry: a load's LRU *stack distance* (the number of
distinct cache lines touched since the previous access to its line,
Mattson et al. 1970) determines which level services it under any LRU
cache of the same line size — distance < L1 lines means an L1 hit,
distance < L2 lines an L2 hit, and so on, independent of associativity
details.

The stack-distance computation uses the classic Fenwick-tree (binary
indexed tree) formulation and runs in O(N log N) over the trace.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Dict, List, Optional

from ..isa.opcodes import Category, Opcode
from .dependence import DependenceTracker

#: Reuse-distance histogram bucket upper bounds (in distinct lines),
#: log-spaced; the final bucket collects cold misses (first touches).
DISTANCE_BUCKETS = (4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096)
COLD_BUCKET = "cold"


class _FenwickTree:
    """Prefix-sum tree over access timestamps."""

    def __init__(self, size: int):
        self._tree = [0] * (size + 1)
        self._size = size

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index <= self._size:
            self._tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        index += 1
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return total


@dataclasses.dataclass
class ReuseProfile:
    """Stack-distance histogram of one access stream."""

    histogram: Counter  # bucket label -> count
    accesses: int
    unique_lines: int

    def fraction_within(self, lines: int) -> float:
        """Fraction of accesses with stack distance < *lines*.

        This is the hit rate of a fully-associative LRU cache holding
        *lines* lines — the calibration bound for a real set-associative
        cache of the same capacity.
        """
        if not self.accesses:
            return 0.0
        covered = 0
        for bucket in DISTANCE_BUCKETS:
            if bucket <= lines:
                covered += self.histogram.get(bucket, 0)
        return covered / self.accesses


def reuse_profile(addresses: List[int], line_words: int = 8) -> ReuseProfile:
    """Stack-distance histogram of an address stream, line-granular."""
    lines = [address // line_words for address in addresses]
    histogram: Counter = Counter()
    last_position: Dict[int, int] = {}
    tree = _FenwickTree(len(lines) + 1)
    for position, line in enumerate(lines):
        previous = last_position.get(line)
        if previous is None:
            histogram[COLD_BUCKET] += 1
        else:
            # Distinct lines touched strictly after the previous access.
            distance = tree.prefix_sum(position) - tree.prefix_sum(previous)
            histogram[_bucket(distance)] += 1
            tree.add(previous, -1)
        tree.add(position, 1)
        last_position[line] = position
    return ReuseProfile(
        histogram=histogram, accesses=len(lines), unique_lines=len(last_position)
    )


def _bucket(distance: int):
    for bound in DISTANCE_BUCKETS:
        if distance < bound:
            return bound
    return DISTANCE_BUCKETS[-1]


@dataclasses.dataclass
class TraceSummary:
    """Aggregate view of one classic execution trace."""

    dynamic_instructions: int
    mix: Dict[str, float]  # category value -> fraction
    load_count: int
    store_count: int
    working_set_words: int
    working_set_lines: int
    load_reuse: Optional[ReuseProfile]

    def compute_fraction(self) -> float:
        """Share of dynamic instructions that are Non-mem compute."""
        return sum(
            fraction
            for name, fraction in self.mix.items()
            if Category(name).is_compute
        )


def summarise_trace(
    tracker: DependenceTracker, line_words: int = 8, with_reuse: bool = True
) -> TraceSummary:
    """Summarise a dependence-tracked classic run."""
    mix_counts: Counter = Counter()
    load_addresses: List[int] = []
    touched: set = set()
    stores = 0
    for record in tracker.records:
        mix_counts[record.opcode.category.value] += 1
        if record.address is not None:
            touched.add(record.address)
            if record.opcode is Opcode.LD:
                load_addresses.append(record.address)
            elif record.opcode is Opcode.ST:
                stores += 1
    total = len(tracker.records)
    mix = {
        name: count / total for name, count in mix_counts.items()
    } if total else {}
    return TraceSummary(
        dynamic_instructions=total,
        mix=mix,
        load_count=len(load_addresses),
        store_count=stores,
        working_set_words=len(touched),
        working_set_lines=len({address // line_words for address in touched}),
        load_reuse=(
            reuse_profile(load_addresses, line_words) if with_reuse else None
        ),
    )
