"""Trace persistence: dump and reload dependence traces as JSONL.

A profiled run's dependence graph can be saved for offline analysis or
regression fixtures and reloaded into a fully functional
:class:`~repro.trace.dependence.DependenceTracker` — the compiler can
then run against the stored trace without re-executing the program.
"""

from __future__ import annotations

import json
import pathlib
from typing import Union

from ..isa.opcodes import Opcode
from .dependence import DependenceTracker, DynRecord


def dump_trace(tracker: DependenceTracker, path: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write one JSON object per dynamic record to *path*."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w") as handle:
        for record in tracker.records:
            handle.write(json.dumps(_encode(record)) + "\n")
    return target


def load_trace(path: Union[str, pathlib.Path]) -> DependenceTracker:
    """Reload a JSONL trace into a tracker (records only, no rescan)."""
    tracker = DependenceTracker()
    with pathlib.Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                tracker.records.append(_decode(json.loads(line)))
    return tracker


def _encode(record: DynRecord) -> dict:
    return {
        "i": record.index,
        "pc": record.pc,
        "op": record.opcode.value,
        "srcs": [list(descriptor) for descriptor in record.srcs],
        "dest": record.dest_reg,
        "res": record.result,
        "addr": record.address,
        "memp": record.mem_producer,
    }


def _decode(payload: dict) -> DynRecord:
    return DynRecord(
        index=payload["i"],
        pc=payload["pc"],
        opcode=Opcode(payload["op"]),
        srcs=tuple(tuple(descriptor) for descriptor in payload["srcs"]),
        dest_reg=payload["dest"],
        result=payload["res"],
        address=payload["addr"],
        mem_producer=payload["memp"],
    )
