"""Load value locality analysis (paper section 5.6, Figure 8).

Value locality [Lipasti et al., ASPLOS'96] of a static load is the
fraction of its dynamic instances whose loaded value matches one of the
last *k* values that same static load produced.  The paper uses it to
argue that recomputation is "mostly orthogonal" to load-value prediction
and memoization: benchmarks whose swapped loads show low value locality
(e.g. ``cg`` at ~0%) cannot be helped by value-reuse techniques, yet
recomputation still applies.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List

from ..isa.opcodes import Opcode
from .events import InstructionEvent

#: History depth of the locality detector (1 = "same as last time").
DEFAULT_HISTORY_DEPTH = 4


class ValueLocalityTracker:
    """Tracer measuring per-static-load value locality."""

    def __init__(self, history_depth: int = DEFAULT_HISTORY_DEPTH):
        if history_depth < 1:
            raise ValueError("history depth must be >= 1")
        self.history_depth = history_depth
        self._history: Dict[int, deque] = {}
        self._hits: Dict[int, int] = {}
        self._total: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Tracer interface.
    # ------------------------------------------------------------------
    def on_instruction(self, event: InstructionEvent) -> None:
        if event.opcode is not Opcode.LD:
            return
        pc, value = event.pc, event.result
        history = self._history.setdefault(pc, deque(maxlen=self.history_depth))
        self._total[pc] = self._total.get(pc, 0) + 1
        if value in history:
            self._hits[pc] = self._hits.get(pc, 0) + 1
        history.append(value)

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def locality(self, pc: int) -> float:
        """Value locality of the static load at *pc* in [0, 1]."""
        total = self._total.get(pc, 0)
        if not total:
            return 0.0
        return self._hits.get(pc, 0) / total

    def observed_loads(self) -> List[int]:
        """Static pcs of all loads observed."""
        return sorted(self._total)

    def load_count(self, pc: int) -> int:
        """Dynamic instance count of the load at *pc*."""
        return self._total.get(pc, 0)

    def localities(self, pcs: Iterable[int] | None = None) -> Dict[int, float]:
        """Locality per static load (restricted to *pcs* when given)."""
        selected = self.observed_loads() if pcs is None else list(pcs)
        return {pc: self.locality(pc) for pc in selected}

    def weighted_histogram(self, pcs: Iterable[int], bins: int = 10) -> List[float]:
        """Histogram of locality over *pcs*, weighted by dynamic load count.

        Returns per-bin *fractions of dynamic loads* — the y-axis of the
        paper's Figure 8 ("% Loads" against "Load Value Locality (%)").
        """
        if bins < 1:
            raise ValueError("bins must be >= 1")
        weights = [0.0] * bins
        total = 0
        for pc in pcs:
            count = self._total.get(pc, 0)
            if not count:
                continue
            bin_index = min(int(self.locality(pc) * bins), bins - 1)
            weights[bin_index] += count
            total += count
        if total:
            weights = [w / total for w in weights]
        return weights
