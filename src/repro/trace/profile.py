"""Per-load service-level profiling: the paper's PrLi estimates.

The amnesic compiler "can at most probabilistically estimate the energy
consumption of the respective load" (paper section 3), deriving PrLi —
the probability that a load is serviced by level Li — "from hit and miss
statistics of Li under profiling" (section 3.1.1).

:class:`LoadProfiler` is a tracer that builds those statistics, both per
static load (the default estimation mode) and globally (the coarser
fallback used when a static load was never observed, and the mode knob
for the estimation-accuracy ablation).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List

from ..isa.opcodes import Opcode
from ..machine.config import LEVELS, Level
from .events import InstructionEvent


class LoadProfiler:
    """Tracer accumulating per-static-load service-level histograms."""

    def __init__(self) -> None:
        self.per_load: Dict[int, Counter] = {}
        self.global_counts: Counter = Counter()

    # ------------------------------------------------------------------
    # Tracer interface.
    # ------------------------------------------------------------------
    def on_instruction(self, event: InstructionEvent) -> None:
        if event.opcode is not Opcode.LD or event.level is None:
            return
        self.per_load.setdefault(event.pc, Counter())[event.level] += 1
        self.global_counts[event.level] += 1

    # ------------------------------------------------------------------
    # PrLi queries.
    # ------------------------------------------------------------------
    def observed_loads(self) -> List[int]:
        """Static pcs of all loads observed during profiling."""
        return sorted(self.per_load)

    def load_count(self, pc: int) -> int:
        """Dynamic execution count of the load at *pc*."""
        return sum(self.per_load.get(pc, Counter()).values())

    def service_probabilities(self, pc: int) -> Dict[Level, float]:
        """PrLi for the static load at *pc* (falls back to global)."""
        counts = self.per_load.get(pc)
        if not counts:
            return self.global_probabilities()
        total = sum(counts.values())
        return {level: counts.get(level, 0) / total for level in LEVELS}

    def global_probabilities(self) -> Dict[Level, float]:
        """Suite-wide PrLi over every profiled load."""
        total = sum(self.global_counts.values())
        if not total:
            # No loads profiled at all: assume everything hits L1, the
            # most conservative assumption for recomputation.
            return {Level.L1: 1.0, Level.L2: 0.0, Level.MEM: 0.0}
        return {
            level: self.global_counts.get(level, 0) / total for level in LEVELS
        }
