"""Dynamic data-dependence tracking.

:class:`DependenceTracker` is a tracer that reconstructs the dynamic
dataflow of a classic execution: for every retired instruction it records
which earlier dynamic instruction produced each register source operand,
and for every load, which store last wrote the loaded address.  The
amnesic compiler's slice formation (paper section 3.1.1, "dependency
analysis to identify the producer instructions of v") consumes this
graph through :mod:`repro.compiler.producers`.

The representation is flat and index-based (one :class:`DynRecord` per
dynamic instruction) so that multi-hundred-thousand-instruction profile
runs stay cheap to store and walk.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple, Union

from ..isa.opcodes import Opcode
from ..isa.operands import Imm, Reg
from .events import InstructionEvent

Value = Union[int, float]

#: Source descriptor tags.
SRC_IMM = "i"  # ('i', value)
SRC_REG = "r"  # ('r', producer_index_or_None, register_index, value)

SourceDescriptor = Tuple


@dataclasses.dataclass(frozen=True)
class DynRecord:
    """One dynamic instruction in the dependence graph."""

    index: int
    pc: int
    opcode: Opcode
    srcs: Tuple[SourceDescriptor, ...]
    dest_reg: Optional[int]
    result: Optional[Value]
    address: Optional[int] = None  # LD/ST effective address
    mem_producer: Optional[int] = None  # for LD: index of producing ST

    @property
    def is_load(self) -> bool:
        return self.opcode is Opcode.LD

    @property
    def is_store(self) -> bool:
        return self.opcode is Opcode.ST


class DependenceTracker:
    """Tracer building the dynamic dependence graph of a classic run."""

    def __init__(self) -> None:
        self.records: List[DynRecord] = []
        self._last_reg_writer: Dict[int, int] = {}
        self._last_mem_writer: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Tracer interface.
    # ------------------------------------------------------------------
    def on_instruction(self, event: InstructionEvent) -> None:
        instruction = event.instruction
        opcode = instruction.opcode

        srcs = self._describe_sources(event)
        mem_producer = None
        if opcode is Opcode.LD and event.address is not None:
            mem_producer = self._last_mem_writer.get(event.address)

        dest_reg = None
        if isinstance(instruction.dest, Reg) and instruction.dest.index != 0:
            dest_reg = instruction.dest.index

        record = DynRecord(
            index=event.index,
            pc=event.pc,
            opcode=opcode,
            srcs=srcs,
            dest_reg=dest_reg,
            result=event.result,
            address=event.address,
            mem_producer=mem_producer,
        )
        # The flat list is indexed by dynamic instruction number; the CPU
        # numbers events densely so append keeps them aligned.
        assert event.index == len(self.records), "trace indices out of sync"
        self.records.append(record)

        if opcode is Opcode.ST and event.address is not None:
            self._last_mem_writer[event.address] = event.index
        if dest_reg is not None:
            self._last_reg_writer[dest_reg] = event.index

    def _describe_sources(self, event: InstructionEvent) -> Tuple[SourceDescriptor, ...]:
        descriptors = []
        values = event.operand_values
        # Stores trace only the stored value; recover per-operand values
        # from the register file indirectly: descriptors carry the traced
        # value when available, else None (only ST base/offset lack one,
        # and nothing consumes those).
        for position, operand in enumerate(event.instruction.srcs):
            if isinstance(operand, Imm):
                descriptors.append((SRC_IMM, operand.value))
            elif isinstance(operand, Reg):
                producer = (
                    None
                    if operand.index == 0
                    else self._last_reg_writer.get(operand.index)
                )
                value = values[position] if position < len(values) else None
                descriptors.append((SRC_REG, producer, operand.index, value))
            else:  # SReg/HistRef never appear in classic (profiled) runs
                descriptors.append((SRC_IMM, None))
        return tuple(descriptors)

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def record(self, index: int) -> DynRecord:
        """The record of dynamic instruction *index*."""
        return self.records[index]

    def loads_at(self, pc: int) -> List[DynRecord]:
        """All dynamic instances of the static load at *pc*."""
        return [r for r in self.records if r.pc == pc and r.is_load]

    def dynamic_loads(self) -> List[DynRecord]:
        """All dynamic load records, in execution order."""
        return [r for r in self.records if r.is_load]

    def __len__(self) -> int:
        return len(self.records)
