"""Tracing and profiling: dependence graphs, PrLi profiles, value locality."""

from .dependence import SRC_IMM, SRC_REG, DependenceTracker, DynRecord
from .events import InstructionEvent, MultiTracer, NullTracer
from .locality import DEFAULT_HISTORY_DEPTH, ValueLocalityTracker
from .io import dump_trace, load_trace
from .profile import LoadProfiler
from .recorder import ProfileResult, profile_program
from .summary import (
    COLD_BUCKET,
    DISTANCE_BUCKETS,
    ReuseProfile,
    TraceSummary,
    reuse_profile,
    summarise_trace,
)

__all__ = [
    "DEFAULT_HISTORY_DEPTH",
    "DependenceTracker",
    "DynRecord",
    "InstructionEvent",
    "LoadProfiler",
    "MultiTracer",
    "NullTracer",
    "ProfileResult",
    "SRC_IMM",
    "SRC_REG",
    "COLD_BUCKET",
    "DISTANCE_BUCKETS",
    "ReuseProfile",
    "TraceSummary",
    "ValueLocalityTracker",
    "dump_trace",
    "load_trace",
    "profile_program",
    "reuse_profile",
    "summarise_trace",
]
