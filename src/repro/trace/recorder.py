"""Convenience profiling runner combining the standard tracers.

:func:`profile_program` runs one classic execution with the dependence
tracker, the load profiler, and the value-locality tracker attached —
the reproduction's equivalent of the paper's "runtime profiler in Pin,
which collects dependency information for binary generation" plus the
hit/miss statistics Sniper supplies (section 4).
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional

from ..isa.program import Program
from .dependence import DependenceTracker
from .events import MultiTracer
from .locality import ValueLocalityTracker
from .profile import LoadProfiler

if TYPE_CHECKING:  # circular at import time: machine.cpu emits trace events
    from ..energy.model import EnergyModel
    from ..machine.cpu import CPU
    from ..machine.stats import RunStats


@dataclasses.dataclass
class ProfileResult:
    """Everything a profiling run produced."""

    dependence: DependenceTracker
    loads: LoadProfiler
    locality: ValueLocalityTracker
    stats: "RunStats"
    cpu: "CPU"

    @property
    def dynamic_instructions(self) -> int:
        return self.stats.dynamic_instructions


def profile_program(
    program: Program,
    model: "EnergyModel",
    max_instructions: Optional[int] = None,
    backend: Optional[str] = None,
) -> ProfileResult:
    """Run *program* classically with all profiling tracers attached.

    *backend* selects the execution backend for the profiling run (None
    resolves from the environment).  Backends are trace-equivalent by
    contract — the fast backend's traced closures emit the identical
    event stream — so the profile, and everything compiled from it, is
    the same whichever backend gathers it.
    """
    from ..core.backend import resolve_backend
    from ..machine.cpu import DEFAULT_MAX_INSTRUCTIONS
    from ..telemetry.runtime import get_telemetry

    dependence = DependenceTracker()
    loads = LoadProfiler()
    locality = ValueLocalityTracker()
    cpu_cls = resolve_backend(backend).cpu_cls
    cpu = cpu_cls(
        program,
        model,
        tracer=MultiTracer(dependence, loads, locality),
        max_instructions=max_instructions or DEFAULT_MAX_INSTRUCTIONS,
    )
    with get_telemetry().span("profile", program=program.name) as span:
        stats = cpu.run()
        span.set(dynamic_instructions=stats.dynamic_instructions)
    return ProfileResult(
        dependence=dependence, loads=loads, locality=locality, stats=stats, cpu=cpu
    )
