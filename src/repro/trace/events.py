"""Dynamic trace event records emitted by the CPU interpreters.

A tracer is any object with an ``on_instruction(event)`` method; the CPU
invokes it after retiring each dynamic instruction.  Events carry enough
information (operand values, results, effective addresses, service
levels) for the profiler and the dependence tracker to reconstruct the
full dynamic dataflow without re-executing the program.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple, Union

from typing import TYPE_CHECKING

from ..isa.instructions import Instruction

if TYPE_CHECKING:  # avoid a circular import: machine.cpu emits these events
    from ..machine.config import Level

Value = Union[int, float]


@dataclasses.dataclass(frozen=True)
class InstructionEvent:
    """One retired dynamic instruction."""

    index: int  # dynamic instruction number, 0-based
    pc: int
    instruction: Instruction
    operand_values: Tuple[Value, ...] = ()
    result: Optional[Value] = None
    address: Optional[int] = None  # effective address (LD/ST/RCMP)
    level: Optional["Level"] = None  # servicing level (performed LD/ST)
    taken: Optional[bool] = None  # branch outcome

    @property
    def opcode(self):
        return self.instruction.opcode

    def __str__(self) -> str:
        extras = []
        if self.address is not None:
            extras.append(f"@{self.address:#x}")
        if self.level is not None:
            extras.append(self.level.value)
        if self.result is not None:
            extras.append(f"= {self.result!r}")
        suffix = " ".join(extras)
        return f"[{self.index}] pc={self.pc} {self.instruction} {suffix}".rstrip()


class NullTracer:
    """A tracer that ignores everything (the default)."""

    def on_instruction(self, event: InstructionEvent) -> None:
        """Discard the event."""


class MultiTracer:
    """Fans one event stream out to several tracers."""

    def __init__(self, *tracers) -> None:
        self.tracers = list(tracers)

    def on_instruction(self, event: InstructionEvent) -> None:
        for tracer in self.tracers:
            tracer.on_instruction(event)
