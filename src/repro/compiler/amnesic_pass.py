"""The end-to-end amnesic compiler pass (paper section 3.1).

Pipeline::

    profile -> extract templates -> form slices -> classify/validate
            -> select profitable slices -> resolve conflicts -> rewrite

Selection modes mirror the paper's evaluation setup (section 5.1):

* ``probabilistic`` — the default: a load is swapped iff the compiler's
  probabilistic energy model says recomputation is cheaper
  (``E_rc < E_ld``).  This is the slice set shared by the Compiler, FLC,
  LLC and C-Oracle policies.
* ``all_valid`` — every validated slice is embedded regardless of
  estimated profit; paired with the Oracle runtime policy this yields
  the paper's Oracle configuration, whose "decisions are based on actual
  (not probabilistic or predicted) energy costs".

Conflict resolution keeps the binary self-consistent: a load that serves
as a *checkpoint source* for a chosen slice (its value feeds a REC) must
keep executing, so it can never itself be swapped.  Candidates are
ranked by estimated benefit and greedily admitted.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..energy.model import EnergyModel
from ..isa.program import Program
from ..telemetry.runtime import get_telemetry
from ..trace.recorder import ProfileResult, profile_program
from .annotate import AmnesicBinary, rewrite_binary
from .cost import ESTIMATION_GLOBAL, ESTIMATION_PER_LOAD, CostContext
from .formation import FORMATION_GREEDY, FORMATION_OPTIMAL, form_slice_tree
from .leaves import ValidationReport, classify_and_validate, collect_liveness
from .producers import (
    DEFAULT_MAX_HEIGHT,
    DEFAULT_MAX_NODES,
    DEFAULT_MAX_SAMPLES,
    TemplateExtractor,
)
from .rslice import RSlice

SELECTION_PROBABILISTIC = "probabilistic"
SELECTION_ALL_VALID = "all_valid"


@dataclasses.dataclass(frozen=True)
class PassOptions:
    """Tuning knobs of the compiler pass."""

    max_height: int = DEFAULT_MAX_HEIGHT
    max_nodes: int = DEFAULT_MAX_NODES
    max_samples: int = DEFAULT_MAX_SAMPLES
    #: Loads observed fewer times than this are not worth a slice.
    min_instances: int = 2
    selection: str = SELECTION_PROBABILISTIC
    #: ``greedy`` = the paper's grow-while-affordable algorithm;
    #: ``optimal`` = minimum-E_rc cut (see repro.compiler.formation).
    formation: str = FORMATION_GREEDY
    #: PrLi estimation: suite-wide ``global`` statistics (the paper's
    #: formulation) or ``per_load`` histograms (ablation).
    estimation: str = ESTIMATION_GLOBAL

    def __post_init__(self) -> None:
        if self.selection not in (SELECTION_PROBABILISTIC, SELECTION_ALL_VALID):
            raise ValueError(f"unknown selection mode {self.selection!r}")
        if self.formation not in (FORMATION_GREEDY, FORMATION_OPTIMAL):
            raise ValueError(f"unknown formation mode {self.formation!r}")
        if self.estimation not in (ESTIMATION_GLOBAL, ESTIMATION_PER_LOAD):
            raise ValueError(f"unknown estimation mode {self.estimation!r}")


@dataclasses.dataclass
class CompilationResult:
    """Everything the pass produced, including rejection diagnostics."""

    binary: AmnesicBinary
    rslices: List[RSlice]
    rejected: Dict[int, str]  # load pc -> reason
    profile: ProfileResult
    options: PassOptions

    @property
    def swapped_load_pcs(self) -> List[int]:
        return sorted(rs.load_pc for rs in self.rslices)

    def slice_for_load(self, load_pc: int) -> Optional[RSlice]:
        for rslice in self.rslices:
            if rslice.load_pc == load_pc:
                return rslice
        return None


def compile_amnesic(
    program: Program,
    model: EnergyModel,
    profile: Optional[ProfileResult] = None,
    options: PassOptions = PassOptions(),
    backend: Optional[str] = None,
) -> CompilationResult:
    """Run the full amnesic pass over *program*.

    *profile* may be supplied to reuse an existing profiling run (e.g.
    when compiling the same program under several option sets).
    *backend* names the execution backend for the profiling run when one
    is needed; backends are trace-equivalent, so the compiled binary is
    identical either way.
    """
    telemetry = get_telemetry()
    with telemetry.span(
        "compile",
        program=program.name,
        selection=options.selection,
        formation=options.formation,
    ) as compile_span:
        if profile is None:
            profile = profile_program(program, model, backend=backend)
        tracker = profile.dependence
        context = CostContext.from_trace(
            model, profile.loads, tracker, estimation=options.estimation
        )
        extractor = TemplateExtractor(
            tracker,
            max_height=options.max_height,
            max_nodes=options.max_nodes,
            max_samples=options.max_samples,
        )

        # Candidate selection: which static loads have a stable,
        # sufficiently hot producer template worth slicing.
        rejected: Dict[int, str] = {}
        full_templates = {}
        with telemetry.span("compile.candidates") as candidates_span:
            for load_pc in program.static_loads():
                count = profile.loads.load_count(load_pc)
                if count < options.min_instances:
                    rejected[load_pc] = (
                        f"only {count} dynamic instance(s) observed "
                        f"(minimum {options.min_instances})"
                    )
                    continue
                template = extractor.extract(load_pc)
                if template is None:
                    rejected[load_pc] = "no stable producer template"
                    continue
                full_templates[load_pc] = template.tree
            candidates_span.set(
                candidates=len(full_templates), rejected=len(rejected)
            )

        # Slice formation.  First trace scan: liveness of every severable
        # operand, so formation can price live leaf inputs as free.
        with telemetry.span("compile.formation") as formation_span:
            liveness = collect_liveness(full_templates, tracker)
            candidates = {}
            for load_pc, tree in full_templates.items():
                formed = form_slice_tree(
                    tree,
                    context,
                    load_pc,
                    liveness=liveness,
                    mode=options.formation,
                )
                candidates[load_pc] = formed.tree
            formation_span.set(formed=len(candidates))

        # Leaf classification.  Second trace scan: classify the final cut
        # trees and validate the recomputation-equals-load invariant on
        # every dynamic instance.
        with telemetry.span("compile.classify"):
            reports = classify_and_validate(candidates, tracker)

        with telemetry.span("compile.select") as select_span:
            scored: List[tuple] = []
            for load_pc, report in reports.items():
                if not report.valid:
                    rejected[load_pc] = _rejection_reason(report)
                    continue
                traversal = context.traversal_cost(report.tree)
                selection = context.selection_cost(report.tree, load_pc)
                estimated_load = context.estimated_load_cost(load_pc)
                benefit = estimated_load.energy_nj - selection.energy_nj
                if options.selection == SELECTION_PROBABILISTIC and benefit <= 0:
                    rejected[load_pc] = (
                        f"unprofitable: E_rc {selection.energy_nj:.2f}nJ >= "
                        f"E_ld {estimated_load.energy_nj:.2f}nJ"
                    )
                    continue
                scored.append(
                    (benefit, load_pc, report, traversal, selection, estimated_load)
                )

            scored.sort(key=lambda item: (-item[0], item[1]))
            chosen: List[RSlice] = []
            reports_by_pc: Dict[int, ValidationReport] = {}
            protected: set = set()  # loads that must keep executing (REC sources)
            swapped: set = set()
            for benefit, load_pc, report, traversal, selection, estimated_load in scored:
                if load_pc in protected:
                    rejected[load_pc] = "load feeds another slice's checkpoint"
                    continue
                if any(pc in swapped for pc in report.checkpoint_load_pcs):
                    rejected[load_pc] = "a checkpoint-source load was already swapped"
                    continue
                rslice = RSlice(
                    slice_id=len(chosen),
                    load_pc=load_pc,
                    root=report.tree,
                    traversal_cost=traversal,
                    selection_cost=selection,
                    estimated_load_cost=estimated_load,
                )
                chosen.append(rslice)
                reports_by_pc[load_pc] = report
                swapped.add(load_pc)
                protected.update(report.checkpoint_load_pcs)
            select_span.set(chosen=len(chosen))

        with telemetry.span("compile.rewrite"):
            binary = rewrite_binary(program, chosen)

        compile_span.set(slices=len(chosen), rejected=len(rejected))
        telemetry.counter("compile.slices", selection=options.selection).inc(
            len(chosen)
        )
        telemetry.counter("compile.rejected", selection=options.selection).inc(
            len(rejected)
        )
        return CompilationResult(
            binary=binary,
            rslices=chosen,
            rejected=rejected,
            profile=profile,
            options=options,
        )


def _rejection_reason(report: ValidationReport) -> str:
    if report.load_pc in report.checkpoint_load_pcs:
        return "slice would need to checkpoint the swapped load itself"
    if report.mismatches:
        return (
            f"replay validation failed: {report.mismatches} mismatching "
            f"instance(s) out of {report.instances_checked}"
        )
    if not report.instances_checked:
        return "no dynamic instances to validate against"
    return "validation failed"
