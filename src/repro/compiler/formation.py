"""Slice formation: choosing how far each slice tree grows.

The extractor (:mod:`repro.compiler.producers`) delivers the *full*
producer tree up to the height/node caps.  Formation decides, per
dataflow edge, whether to keep expanding (the operand is recomputed by a
child subtree through the SFile) or to cut (the operand becomes a leaf
input retrieved from the history table, a live register, or a
constant).  Two modes are implemented:

* ``greedy`` — the paper's algorithm (section 3.1.1): let the slice
  "grow level by level, as long as the cumulative cost of recomputation
  along RSlice(v) being constructed remains below E_ld".  Deeper levels
  re-derive values from registers instead of consuming history-table
  checkpoints, so slices grow as long as the probabilistic load cost
  affords them.  This is the default and reproduces the paper's
  Figure 6 slice-length distributions.
* ``optimal`` — a bottom-up dynamic program picking the
  minimum-estimated-``E_rc`` cut.  Because a history read (priced like
  an L1-D access) is cheaper than re-executing more than a couple of
  instructions, the optimum hugs very short slices; the difference
  against ``greedy`` is quantified by the formation-mode ablation
  benchmark.

Both modes price leaf inputs with the liveness information collected by
:func:`repro.compiler.leaves.collect_liveness`: an input that will be
classified live costs neither a history read nor a REC.

Checkpoint-load nodes collapse on expansion: replacing a load along the
chain by its own producer slice splices the producer subtree directly,
so "loads and stores cannot be present as intermediate nodes" holds by
construction.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

from .cost import CostContext
from .leaves import OperandFacts
from .rslice import LeafInput, TemplateNode

FORMATION_GREEDY = "greedy"
FORMATION_OPTIMAL = "optimal"

#: Fraction of E_ld that greedy growth may consume, leaving headroom for
#: the REC amortisation added at selection time.
GREEDY_BUDGET_MARGIN = 0.8


@dataclasses.dataclass
class FormationResult:
    """The chosen tree and its estimated traversal energy."""

    tree: TemplateNode
    estimated_energy_nj: float


def form_slice_tree(
    template: TemplateNode,
    context: CostContext,
    load_pc: int,
    liveness: Optional[OperandFacts] = None,
    mode: str = FORMATION_GREEDY,
    budget_nj: Optional[float] = None,
) -> FormationResult:
    """Choose the cut of *template* for the load at *load_pc*.

    ``budget_nj`` is the probabilistic ``E_ld`` that bounds greedy
    growth; it defaults to the profiler's estimate for *load_pc*, scaled
    back by a safety margin: a slice grown right up to ``E_ld`` would be
    rejected by the selection step once the amortised REC checkpointing
    overhead is added on top, so growth keeps headroom for it.
    """
    if budget_nj is None:
        budget_nj = GREEDY_BUDGET_MARGIN * context.estimated_load_cost(
            load_pc
        ).energy_nj
    former = _SliceFormer(context, load_pc, liveness or OperandFacts({}, {}))
    if mode == FORMATION_OPTIMAL:
        energy, tree = former.best(template)
        return FormationResult(tree=tree, estimated_energy_nj=energy)
    if mode == FORMATION_GREEDY:
        return former.greedy(template, budget_nj)
    raise ValueError(f"unknown formation mode {mode!r}")


class _SliceFormer:
    """Cut selection over one template tree."""

    def __init__(
        self, context: CostContext, load_pc: int, facts: OperandFacts
    ) -> None:
        self.context = context
        self.load_pc = load_pc
        self.facts = facts
        self._hist_read_nj = context.hist_read_cost().energy_nj
        self._rec_nj = context.model.rec_cost().energy_nj
        self._load_count = max(context.pc_execution_counts.get(load_pc, 1), 1)

    # ------------------------------------------------------------------
    # Shared pricing helpers.
    # ------------------------------------------------------------------
    def _is_live(self, pc: int, position: int) -> bool:
        return self.facts.is_live(self.load_pc, pc, position)

    def _can_expand(self, pc: int, position: int) -> bool:
        return self.facts.can_expand(self.load_pc, pc, position)

    def _leaf_input_nj(self, node: TemplateNode, position: int,
                       is_register: bool) -> float:
        """Cost of supplying one leaf input at recompute time."""
        if not is_register:
            return 0.0  # immediates are free
        if not node.is_checkpoint_load and self._is_live(node.pc, position):
            return 0.0  # read straight from the architectural register
        return self._hist_read_nj

    def _leaf_node_nj(self, node: TemplateNode, cut_edges) -> float:
        """Total cost of *node* treated as a leaf.

        ``cut_edges`` are (position, reg) pairs for child edges being
        severed; their operands join the node's own register inputs.
        """
        energy = self.context.node_cost(node).energy_nj
        needs_rec = False
        for leaf_input in node.leaf_inputs:
            is_register = leaf_input.reg_index is not None
            cost = self._leaf_input_nj(node, leaf_input.position, is_register)
            energy += cost
            if cost > 0.0:
                needs_rec = True
        for position, _reg in cut_edges:
            cost = self._leaf_input_nj(node, position, True)
            energy += cost
            if cost > 0.0:
                needs_rec = True
        if needs_rec:
            energy += self._amortised_rec(node.pc)
        return energy

    def _amortised_rec(self, producer_pc: int) -> float:
        producer_count = self.context.pc_execution_counts.get(producer_pc, 1)
        return self._rec_nj * (producer_count / self._load_count)

    def _materialise_leaf(self, node: TemplateNode, cut_edges) -> TemplateNode:
        leaf = TemplateNode(
            pc=node.pc,
            opcode=node.opcode,
            leaf_inputs=[dataclasses.replace(li) for li in node.leaf_inputs],
            is_checkpoint_load=node.is_checkpoint_load,
        )
        for position, reg in cut_edges:
            leaf.leaf_inputs.append(LeafInput.register(position, reg))
        leaf.leaf_inputs.sort(key=lambda li: li.position)
        return leaf

    # ------------------------------------------------------------------
    # Greedy level-by-level growth (the paper's algorithm).
    # ------------------------------------------------------------------
    def greedy(self, template: TemplateNode, budget_nj: float) -> FormationResult:
        """Grow level by level while the cumulative cost stays in budget.

        The one-level tree is always produced (the pass rejects it later
        if even that exceeds ``E_ld``); each deeper level is adopted only
        while its cumulative cost remains within budget, and growth
        stops at the first level that exceeds it.
        """
        best_energy, best_tree = self._cut_at_depth(template, 0, 0)
        for depth in range(1, template.height + 1):
            energy, tree = self._cut_at_depth(template, depth, 0)
            if energy > budget_nj:
                break
            best_tree, best_energy = tree, energy
        return FormationResult(tree=best_tree, estimated_energy_nj=best_energy)

    def _cut_at_depth(
        self, node: TemplateNode, limit: int, depth: int
    ) -> Tuple[float, TemplateNode]:
        """Materialise the tree with expansion allowed below *limit* levels."""
        if node.is_checkpoint_load:
            # A checkpoint load expands by splicing its producer chain.
            if node.children and depth < limit and self._can_expand(node.pc, 0):
                return self._cut_at_depth(node.children[0], limit, depth)
            cut_edges: list = []
            return self._leaf_node_nj(node, cut_edges), self._materialise_leaf(
                node, cut_edges
            )
        if not node.children or depth >= limit:
            cut_edges = list(zip(node.child_positions, node.child_regs))
            return self._leaf_node_nj(node, cut_edges), self._materialise_leaf(
                node, cut_edges
            )
        energy = self.context.node_cost(node).energy_nj
        materialised = TemplateNode(
            pc=node.pc,
            opcode=node.opcode,
            leaf_inputs=[dataclasses.replace(li) for li in node.leaf_inputs],
        )
        needs_rec = False
        for leaf_input in materialised.leaf_inputs:
            is_register = leaf_input.reg_index is not None
            cost = self._leaf_input_nj(node, leaf_input.position, is_register)
            energy += cost
            if cost > 0.0:
                needs_rec = True
        if needs_rec:
            energy += self._amortised_rec(node.pc)
        for child, position, reg in zip(
            node.children, node.child_positions, node.child_regs
        ):
            # Growth stops at an edge that is (a) provably inconsistent
            # to expand, or (b) already free: a live register supplies
            # the operand without a checkpoint, so re-deriving it deeper
            # could only add instructions and history traffic.
            if not self._can_expand(node.pc, position) or self._is_live(
                node.pc, position
            ):
                cost = self._leaf_input_nj(node, position, True)
                energy += cost
                if cost > 0.0:
                    energy += self._amortised_rec(node.pc)
                materialised.leaf_inputs.append(
                    LeafInput.register(position, reg)
                )
                continue
            child_energy, child_tree = self._cut_at_depth(child, limit, depth + 1)
            energy += child_energy
            materialised.children.append(child_tree)
            materialised.child_positions.append(position)
            materialised.child_regs.append(reg)
        materialised.leaf_inputs.sort(key=lambda li: li.position)
        return energy, materialised

    # ------------------------------------------------------------------
    # Optimal (minimum-E_rc) cut.
    # ------------------------------------------------------------------
    def best(self, node: TemplateNode) -> Tuple[float, TemplateNode]:
        """Minimum estimated energy and the materialised subtree."""
        if node.is_checkpoint_load:
            return self._best_checkpoint_load(node)
        return self._best_compute(node)

    def _best_checkpoint_load(self, node: TemplateNode) -> Tuple[float, TemplateNode]:
        keep_energy = self._leaf_node_nj(node, [])
        keep_tree = self._materialise_leaf(node, [])
        if not node.children or not self._can_expand(node.pc, 0):
            return keep_energy, keep_tree
        expand_energy, expanded = self.best(node.children[0])
        if expand_energy < keep_energy:
            return expand_energy, expanded
        return keep_energy, keep_tree

    def _best_compute(self, node: TemplateNode) -> Tuple[float, TemplateNode]:
        energy = self.context.node_cost(node).energy_nj
        materialised = TemplateNode(pc=node.pc, opcode=node.opcode)
        materialised.leaf_inputs = [
            dataclasses.replace(li) for li in node.leaf_inputs
        ]
        needs_rec = False
        for leaf_input in materialised.leaf_inputs:
            is_register = leaf_input.reg_index is not None
            cost = self._leaf_input_nj(node, leaf_input.position, is_register)
            energy += cost
            if cost > 0.0:
                needs_rec = True
        for child, position, reg_index in zip(
            node.children, node.child_positions, node.child_regs
        ):
            cut_energy = self._leaf_input_nj(node, position, True)
            if not self._can_expand(node.pc, position):
                energy += cut_energy
                if cut_energy > 0.0:
                    needs_rec = True
                materialised.leaf_inputs.append(
                    LeafInput.register(position, reg_index)
                )
                continue
            expand_energy, expanded = self.best(child)
            if expand_energy < cut_energy or (
                expand_energy == cut_energy and cut_energy == 0.0
            ):
                energy += expand_energy
                materialised.children.append(expanded)
                materialised.child_positions.append(position)
                materialised.child_regs.append(reg_index)
            else:
                energy += cut_energy
                if cut_energy > 0.0:
                    needs_rec = True
                materialised.leaf_inputs.append(
                    LeafInput.register(position, reg_index)
                )
        if needs_rec:
            energy += self._amortised_rec(node.pc)
        materialised.leaf_inputs.sort(key=lambda li: li.position)
        return energy, materialised
