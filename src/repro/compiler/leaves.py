"""Leaf-input classification and replay validation of slice templates.

Two jobs, done in a single scan over the profiled trace:

1. **Liveness classification** (paper section 2.2).  A leaf's register
   input is *live* if, at every observed RCMP point, the architectural
   register still holds the value the leaf consumed — then no history
   checkpoint is needed.  Otherwise the value is "lost, i.e.,
   overwritten at the time of recomputation": a non-recomputable input
   that a REC must checkpoint into Hist.

2. **Replay validation** — the reproduction's safety gate.  The history
   table keeps one entry per leaf holding the operands of the leaf's
   *latest* execution, so recomputation is correct only for loads whose
   value equals the template evaluated over those latest operands.  We
   simulate exactly those semantics over the trace: maintain per-pc latest
   operand values and the architectural register file, evaluate each
   candidate template at each dynamic load instance, and reject any
   candidate with a single mismatch.  (Instances where a checkpoint does
   not exist yet are fine: the runtime scheduler falls back to the plain
   load in that case, paper section 3.5.)

The scan simulates exactly the semantics the hardware implements, so a
template that validates here and whose leaves keep checkpointing at
runtime recomputes bit-identical values.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple, Union

from ..errors import ReproError
from ..isa.opcodes import Opcode
from ..isa.semantics import evaluate
from ..trace.dependence import SRC_IMM, DependenceTracker
from .rslice import LeafInputKind, TemplateNode

Value = Union[int, float]


@dataclasses.dataclass
class ValidationReport:
    """Outcome of classifying/validating one candidate template."""

    load_pc: int
    tree: TemplateNode
    valid: bool
    instances_checked: int = 0
    mismatches: int = 0
    missing_checkpoints: int = 0
    checkpoint_load_pcs: Tuple[int, ...] = ()

    @property
    def always_recomputable(self) -> bool:
        """True when every observed instance could have been recomputed."""
        return self.valid and self.missing_checkpoints == 0


class _MissingCheckpoint(ReproError):
    """The template references a leaf that has not executed yet."""


#: Sentinel: a shallow re-execution had no checkpoint to work from.
_MISSING = object()


def classify_and_validate(
    candidates: Dict[int, TemplateNode], tracker: DependenceTracker
) -> Dict[int, ValidationReport]:
    """Classify leaf inputs and validate *candidates* in one trace scan.

    ``candidates`` maps a static load pc to its formed template tree.
    Leaf-input kinds are updated **in place** (HIST relaxed to LIVE_REG
    where liveness holds); the returned reports carry validity verdicts.
    """
    scanner = _ReplayScanner(candidates, tracker)
    return scanner.run()


@dataclasses.dataclass
class OperandFacts:
    """Per-operand facts formation needs, gathered over full templates.

    ``live`` — ``(load_pc, producer_pc, position)`` flags: the register
    still holds the consumed value at every observed RCMP point.

    ``edge_consistent`` — the same keys, for severable dataflow edges:
    re-evaluating the child subtree from latest checkpoints reproduces
    the operand value the parent's latest execution consumed, at every
    observed RCMP point.  Expanding an inconsistent edge (e.g. chasing
    a loop counter past a stale refill) would always fail validation,
    so formation refuses to grow through it.
    """

    live: Dict[Tuple[int, int, int], bool]
    edge_consistent: Dict[Tuple[int, int, int], bool]

    def is_live(self, load_pc: int, producer_pc: int, position: int) -> bool:
        return self.live.get((load_pc, producer_pc, position), False)

    def can_expand(self, load_pc: int, producer_pc: int, position: int) -> bool:
        return self.edge_consistent.get((load_pc, producer_pc, position), True)


def collect_liveness(
    candidates: Dict[int, TemplateNode], tracker: DependenceTracker
) -> OperandFacts:
    """Collect liveness and edge-consistency flags over *full* templates.

    Both facts are independent of where the slice is eventually cut, so
    formation can price leaf inputs and gate expansion before the cut is
    chosen.  No validity verdict is produced here — the final (cut)
    trees are validated separately.
    """
    scanner = _ReplayScanner(candidates, tracker, collect_only=True)
    scanner.run()
    return OperandFacts(
        live={key: flag for key, flag in scanner.live_ok.items() if flag},
        edge_consistent=dict(scanner.edge_ok),
    )


class _ReplayScanner:
    """One-pass replay of Hist/liveness semantics over the trace."""

    def __init__(
        self,
        candidates: Dict[int, TemplateNode],
        tracker: DependenceTracker,
        collect_only: bool = False,
    ):
        self.candidates = candidates
        self.tracker = tracker
        self.collect_only = collect_only
        self.regfile: Dict[int, Value] = {}
        self.latest_src_ops: Dict[int, Tuple[Value, ...]] = {}
        self.latest_load_value: Dict[int, Value] = {}
        # (load_pc, producer_pc, position) -> still-live flag.  Keyed by
        # static pc, so duplicated nodes (diamond dataflow) share flags.
        self.live_ok: Dict[Tuple[int, int, int], bool] = {}
        # Same keys: expanding the edge reproduces the consumed value.
        self.edge_ok: Dict[Tuple[int, int, int], bool] = {}
        self.reports: Dict[int, ValidationReport] = {
            pc: ValidationReport(
                load_pc=pc,
                tree=tree,
                valid=True,
                checkpoint_load_pcs=tuple(
                    sorted(
                        {
                            node.pc
                            for node in tree.walk()
                            if node.is_checkpoint_load
                        }
                    )
                ),
            )
            for pc, tree in candidates.items()
        }
        # A slice whose chain loops back through its own load can never
        # checkpoint itself once the load is swapped.
        for pc, report in self.reports.items():
            if pc in report.checkpoint_load_pcs:
                report.valid = False

    # ------------------------------------------------------------------
    # The scan.
    # ------------------------------------------------------------------
    def run(self) -> Dict[int, ValidationReport]:
        for record in self.tracker.records:
            if record.is_load and record.pc in self.candidates:
                self._check_instance(record)
            self._update_state(record)
        self._finalise_kinds()
        return self.reports

    def _update_state(self, record) -> None:
        opcode = record.opcode
        if opcode.is_compute and record.dest_reg is not None:
            self.latest_src_ops[record.pc] = tuple(
                descriptor[1] if descriptor[0] == SRC_IMM else descriptor[3]
                for descriptor in record.srcs
            )
            self.regfile[record.dest_reg] = record.result
        elif opcode is Opcode.LD:
            self.latest_load_value[record.pc] = record.result
            if record.dest_reg is not None:
                self.regfile[record.dest_reg] = record.result

    def _check_instance(self, record) -> None:
        if self.collect_only:
            self._collect_instance(record)
            return
        report = self.reports[record.pc]
        if not report.valid:
            return
        report.instances_checked += 1
        try:
            recomputed = self._evaluate(record.pc, self.candidates[record.pc])
        except _MissingCheckpoint:
            report.missing_checkpoints += 1
            return
        except ReproError:
            report.mismatches += 1
            report.valid = False
            return
        if recomputed != record.result:
            report.mismatches += 1
            report.valid = False

    # ------------------------------------------------------------------
    # Collect mode: flat per-node fact gathering (no recursion).
    # ------------------------------------------------------------------
    def _collect_instance(self, record) -> None:
        """Gather liveness and shallow edge-consistency at one RCMP point.

        Shallow consistency of an edge parent->child asks: would cutting
        *at the child* (re-executing the child once from its own latest
        checkpointed operands) reproduce the value the parent's latest
        execution consumed?  A cut tree is correct iff every edge above
        its frontier is shallow-consistent and the frontier leaves read
        their own latest operands — which is exactly what Hist supplies —
        so formation may grow through an edge iff this flag holds.
        """
        load_pc = record.pc
        for node in self.candidates[load_pc].walk():
            latest = self.latest_src_ops.get(node.pc)
            if not node.is_checkpoint_load and latest is not None:
                for leaf_input in node.leaf_inputs:
                    if leaf_input.reg_index is not None:
                        self._note_liveness(
                            load_pc, node, leaf_input, latest[leaf_input.position]
                        )
            for child, position, reg in zip(
                node.children, node.child_positions, node.child_regs
            ):
                key = (load_pc, node.pc, position)
                if node.is_checkpoint_load:
                    consumed = self.latest_load_value.get(node.pc)
                else:
                    consumed = latest[position] if latest is not None else None
                if consumed is None:
                    continue
                if reg is not None:
                    alive = self.regfile.get(reg, 0) == consumed
                    self.live_ok[key] = self.live_ok.get(key, True) and alive
                shallow = self._shallow_value(child)
                if shallow is _MISSING:
                    continue
                consistent = shallow == consumed
                self.edge_ok[key] = self.edge_ok.get(key, True) and consistent

    def _shallow_value(self, node: TemplateNode):
        """Re-execute *node* once from its own latest checkpointed operands."""
        if node.is_checkpoint_load:
            return self.latest_load_value.get(node.pc, _MISSING)
        latest = self.latest_src_ops.get(node.pc)
        if latest is None:
            return _MISSING
        if node.opcode is Opcode.LI:
            return latest[0]
        try:
            return evaluate(node.opcode, latest)
        except ReproError:
            return _MISSING

    # ------------------------------------------------------------------
    # Template evaluation under Hist semantics (validation mode).
    # ------------------------------------------------------------------
    def _evaluate(self, load_pc: int, node: TemplateNode) -> Value:
        if node.is_checkpoint_load:
            if node.pc not in self.latest_load_value:
                raise _MissingCheckpoint(str(node.pc))
            return self.latest_load_value[node.pc]
        arity = len(node.leaf_inputs) + len(node.children)
        operands: List[Optional[Value]] = [None] * arity
        for leaf_input in node.leaf_inputs:
            if leaf_input.reg_index is None:
                value = leaf_input.const_value
            else:
                latest = self.latest_src_ops.get(node.pc)
                if latest is None:
                    raise _MissingCheckpoint(str(node.pc))
                value = latest[leaf_input.position]
                self._note_liveness(load_pc, node, leaf_input, value)
            operands[leaf_input.position] = value
        for child, position in zip(node.children, node.child_positions):
            operands[position] = self._evaluate(load_pc, child)
        if node.opcode is Opcode.LI:
            return operands[0]
        return evaluate(node.opcode, operands)

    def _note_liveness(self, load_pc: int, node: TemplateNode, leaf_input, value) -> None:
        key = (load_pc, node.pc, leaf_input.position)
        current = self.regfile.get(leaf_input.reg_index, 0)
        alive = current == value
        self.live_ok[key] = self.live_ok.get(key, True) and alive

    # ------------------------------------------------------------------
    # Final classification.
    # ------------------------------------------------------------------
    def _finalise_kinds(self) -> None:
        if self.collect_only:
            return
        for load_pc, tree in self.candidates.items():
            report = self.reports[load_pc]
            if not report.valid or not report.instances_checked:
                report.valid = False
                continue
            for node in tree.walk():
                if node.is_checkpoint_load:
                    continue
                for leaf_input in node.leaf_inputs:
                    if leaf_input.reg_index is None:
                        continue
                    key = (load_pc, node.pc, leaf_input.position)
                    if self.live_ok.get(key, False):
                        leaf_input.kind = LeafInputKind.LIVE_REG
                    else:
                        leaf_input.kind = LeafInputKind.HIST
