"""The amnesic compiler: slice extraction, formation, validation, rewriting."""

from .amnesic_pass import (
    SELECTION_ALL_VALID,
    SELECTION_PROBABILISTIC,
    CompilationResult,
    PassOptions,
    compile_amnesic,
)
from .annotate import AmnesicBinary, SliceInfo, rewrite_binary
from .cost import ESTIMATION_GLOBAL, ESTIMATION_PER_LOAD, CostContext
from .deadstore import DeadStoreAnalysis, StoreSiteReport, analyse_dead_stores, analysis_for_compilation
from .formation import FormationResult, form_slice_tree
from .leaves import ValidationReport, classify_and_validate
from .producers import (
    DEFAULT_MAX_HEIGHT,
    DEFAULT_MAX_NODES,
    DEFAULT_MAX_SAMPLES,
    CandidateTemplate,
    TemplateExtractor,
)
from .rslice import LeafInput, LeafInputKind, RSlice, TemplateNode

__all__ = [
    "AmnesicBinary",
    "CandidateTemplate",
    "CompilationResult",
    "CostContext",
    "DeadStoreAnalysis",
    "ESTIMATION_GLOBAL",
    "ESTIMATION_PER_LOAD",
    "StoreSiteReport",
    "analyse_dead_stores",
    "analysis_for_compilation",
    "DEFAULT_MAX_HEIGHT",
    "DEFAULT_MAX_NODES",
    "DEFAULT_MAX_SAMPLES",
    "FormationResult",
    "LeafInput",
    "LeafInputKind",
    "PassOptions",
    "RSlice",
    "SELECTION_ALL_VALID",
    "SELECTION_PROBABILISTIC",
    "SliceInfo",
    "TemplateExtractor",
    "TemplateNode",
    "ValidationReport",
    "classify_and_validate",
    "compile_amnesic",
    "form_slice_tree",
    "rewrite_binary",
]
