"""Producer-template extraction from dynamic dependence traces.

For each candidate load the compiler needs the tree of producer
instructions that generated the loaded value — the raw material of
RSlice formation (paper section 3.1.1: "dependency analysis to identify
the producer instructions of v").  This module walks the
:class:`~repro.trace.dependence.DependenceTracker` graph backwards from
each dynamic load instance and produces a :class:`TemplateNode` tree:

* the load's producing store is located through the memory dependence;
* the stored value's register dataflow is chased through compute
  instructions, level by level, up to the extraction caps;
* loads encountered along the chain become *checkpoint-load* nodes that
  may either stay leaves (value kept in Hist, paper section 3.5) or be
  expanded through their own producing stores ("the compiler replaces
  each such load with the respective recomputing slice, recursively");
* a node whose register operand has no dynamic producer (initial
  register state) can only ever be a leaf.

Templates from different dynamic instances of the same static load must
agree structurally (:meth:`TemplateNode.structural_signature`); unstable
loads are rejected, mirroring the paper's requirement that the compiler
can *prove* the recomputation pattern.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from ..isa.opcodes import Opcode
from ..trace.dependence import SRC_IMM, SRC_REG, DependenceTracker, DynRecord
from .rslice import LeafInput, TemplateNode

#: Default extraction caps: the compiler "caps the tree height h to
#: maximize energy savings" (paper section 3.4).  The height cap admits
#: the paper's long-slice tail (Figure 6 shows slices up to ~70
#: instructions); greedy formation still stops growth at the E_ld
#: budget, so typical slices stay short.
DEFAULT_MAX_HEIGHT = 40
DEFAULT_MAX_NODES = 96

#: How many dynamic instances of a load are checked for stability.
DEFAULT_MAX_SAMPLES = 24


@dataclasses.dataclass
class CandidateTemplate:
    """A structurally stable producer template for one static load."""

    load_pc: int
    tree: TemplateNode
    instance_count: int
    samples_checked: int


class ExtractionFailure(Exception):
    """Internal signal: this dynamic instance has no usable template."""


class TemplateExtractor:
    """Walks the dependence graph backwards to build producer templates."""

    def __init__(
        self,
        tracker: DependenceTracker,
        max_height: int = DEFAULT_MAX_HEIGHT,
        max_nodes: int = DEFAULT_MAX_NODES,
        max_samples: int = DEFAULT_MAX_SAMPLES,
    ):
        self.tracker = tracker
        self.max_height = max_height
        self.max_nodes = max_nodes
        self.max_samples = max_samples

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------
    def extract(self, load_pc: int) -> Optional[CandidateTemplate]:
        """Extract a stable template for the static load at *load_pc*.

        Returns ``None`` when the load has no dynamic instances, reads
        values that were never produced by a traced store (pure input
        reads cannot anchor a slice: the swapped load would no longer
        execute to checkpoint itself), or when instances disagree
        structurally.
        """
        instances = self.tracker.loads_at(load_pc)
        if not instances:
            return None
        samples = self._sample(instances)
        trees: List[TemplateNode] = []
        for record in samples:
            try:
                trees.append(self._template_for_instance(record))
            except ExtractionFailure:
                return None
        signature = trees[-1].structural_signature()
        if any(tree.structural_signature() != signature for tree in trees[:-1]):
            return None
        return CandidateTemplate(
            load_pc=load_pc,
            tree=trees[-1],
            instance_count=len(instances),
            samples_checked=len(samples),
        )

    def _sample(self, instances: List[DynRecord]) -> List[DynRecord]:
        """Steady-state sampling: the last instance plus spread late ones.

        The template is anchored on the *last* dynamic instance and
        structural agreement is required over samples from the second
        half of the run — warm-up instances (e.g. the very first loop
        iteration, whose producers differ from the steady state) are
        deliberately excluded.  Soundness does not rest on the sampling:
        the replay validation in :mod:`repro.compiler.leaves` checks
        *every* instance and turns warm-up divergence into runtime
        fallbacks (missing checkpoints) or outright rejection.
        """
        steady = instances[len(instances) // 2 :] or instances
        if len(steady) <= self.max_samples:
            return steady
        stride = len(steady) / self.max_samples
        picked = [steady[int(i * stride)] for i in range(self.max_samples - 1)]
        picked.append(steady[-1])
        return picked

    # ------------------------------------------------------------------
    # Per-instance walking.
    # ------------------------------------------------------------------
    def _template_for_instance(self, load_record: DynRecord) -> TemplateNode:
        self._nodes_built = 0
        #: Static pcs on the current walk path.  Expansion never re-enters
        #: a pc already being expanded: loop-carried producer chains (the
        #: loop increment producing itself, accumulators) would otherwise
        #: unroll into templates that replay the *latest* iteration once
        #: per level — always invalid under Hist's latest-value semantics.
        self._path: set = set()
        if load_record.mem_producer is None:
            raise ExtractionFailure("load reads unproduced (input) memory")
        store = self.tracker.record(load_record.mem_producer)
        return self._node_for_value(store, depth=0)

    def _node_for_value(self, store: DynRecord, depth: int) -> TemplateNode:
        """Template producing the value that *store* wrote."""
        descriptor = store.srcs[0]
        if descriptor[0] == SRC_IMM:
            return self._constant_node(store.pc, descriptor[1])
        _, producer_index, _reg, value = descriptor
        if producer_index is None:
            # Initial register state: a value that was never produced by
            # a traced instruction.  Treat as a synthetic constant; the
            # replay validation will reject it if it ever varies.
            return self._constant_node(store.pc, value)
        producer = self.tracker.record(producer_index)
        if producer.pc in self._path:
            # The stored value's chain loops back through an instruction
            # already being expanded (e.g. an accumulator spilled and
            # reloaded): expansion here would unroll the loop-carried
            # dependence, which Hist's latest-value semantics cannot
            # replay.
            raise ExtractionFailure(
                f"stored value's producer at pc {producer.pc} is loop-carried"
            )
        return self._node_for_producer(producer, depth)

    def _node_for_producer(self, record: DynRecord, depth: int) -> TemplateNode:
        self._count_node()
        if record.opcode is Opcode.LD:
            return self._load_node(record, depth)
        if not record.opcode.is_compute:
            raise ExtractionFailure(
                f"producer at pc {record.pc} is not recomputable "
                f"({record.opcode.value})"
            )
        node = TemplateNode(pc=record.pc, opcode=record.opcode)
        expandable = depth < self.max_height
        self._path.add(record.pc)
        try:
            for position, descriptor in enumerate(record.srcs):
                if descriptor[0] == SRC_IMM:
                    node.leaf_inputs.append(
                        LeafInput.immediate(position, descriptor[1])
                    )
                    continue
                _, producer_index, reg_index, _value = descriptor
                producer = (
                    self.tracker.record(producer_index)
                    if producer_index is not None
                    else None
                )
                if (
                    producer is None
                    or not expandable
                    or producer.pc in self._path
                ):
                    # No producer, height cap reached, or a loop-carried
                    # chain: the operand pins this position to leaf-input
                    # treatment.
                    node.leaf_inputs.append(LeafInput.register(position, reg_index))
                    continue
                child = self._node_for_producer(producer, depth + 1)
                node.children.append(child)
                node.child_positions.append(position)
                node.child_regs.append(reg_index)
        finally:
            self._path.discard(record.pc)
        return node

    def _load_node(self, record: DynRecord, depth: int) -> TemplateNode:
        """A load along the chain: checkpoint-leaf, optionally expandable."""
        node = TemplateNode(
            pc=record.pc,
            opcode=Opcode.MOV,
            is_checkpoint_load=True,
            leaf_inputs=[LeafInput.register(0, record.dest_reg)]
            if record.dest_reg is not None
            else [],
        )
        if record.dest_reg is None:
            raise ExtractionFailure(
                f"load at pc {record.pc} writes r0; cannot checkpoint"
            )
        if (
            record.mem_producer is not None
            and depth < self.max_height
            and record.pc not in self._path
        ):
            self._path.add(record.pc)
            nodes_before = self._nodes_built
            try:
                child = self._node_for_value(
                    self.tracker.record(record.mem_producer), depth + 1
                )
            except ExtractionFailure:
                # The chain below this load cannot be expanded (e.g. it
                # is loop-carried); keep the load as a plain checkpoint
                # leaf instead of rejecting the whole template.
                self._nodes_built = nodes_before
            else:
                node.children.append(child)
                node.child_positions.append(0)
                node.child_regs.append(record.dest_reg)
            finally:
                self._path.discard(record.pc)
        return node

    def _constant_node(self, pc: int, value) -> TemplateNode:
        if value is None:
            raise ExtractionFailure("constant producer with unknown value")
        self._count_node()
        return TemplateNode(
            pc=pc,
            opcode=Opcode.LI,
            leaf_inputs=[LeafInput.immediate(0, value)],
        )

    def _count_node(self) -> None:
        self._nodes_built += 1
        if self._nodes_built > self.max_nodes:
            raise ExtractionFailure("template exceeds the node budget")
