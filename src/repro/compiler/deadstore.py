"""Dead-store analysis: the paper's store-elision opportunity.

Paper section 1: "For each load replaced with an RSlice, the
corresponding store (to the same memory address) can become redundant if
no other load (from the same address) depends on it.  Therefore, amnesic
execution can also filter out energy-hungry stores, and reduce the
pressure on memory capacity by shrinking the memory footprint."

This module quantifies that opportunity as an *analysis* (the stores are
not actually removed: the runtime's fallback path — a missing Hist
checkpoint, an SFile overflow, a policy that skips — still performs the
real load, which must observe the stored value).  A store instance is
*elidable under always-firing recomputation* iff every load that ever
consumes one of its values is a swapped load; the reported savings are
therefore an upper bound, exactly the spirit in which the paper raises
the opportunity.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..energy.model import EnergyModel
from ..isa.opcodes import Opcode
from ..trace.dependence import DependenceTracker


@dataclasses.dataclass
class StoreSiteReport:
    """Consumption summary of one static store."""

    store_pc: int
    dynamic_instances: int
    #: Static load pcs that ever read a value this store wrote.
    consumer_load_pcs: Tuple[int, ...]
    #: Instances whose value was overwritten (or the run ended) unread.
    never_read_instances: int

    def is_elidable(self, swapped_load_pcs: Set[int]) -> bool:
        """Redundant if recomputation covers every consumer."""
        return all(pc in swapped_load_pcs for pc in self.consumer_load_pcs)


@dataclasses.dataclass
class DeadStoreAnalysis:
    """Whole-program store-elision opportunity."""

    sites: List[StoreSiteReport]
    swapped_load_pcs: Set[int]
    total_dynamic_stores: int

    @property
    def elidable_sites(self) -> List[StoreSiteReport]:
        return [s for s in self.sites if s.is_elidable(self.swapped_load_pcs)]

    @property
    def elidable_dynamic_stores(self) -> int:
        return sum(site.dynamic_instances for site in self.elidable_sites)

    @property
    def elidable_fraction(self) -> float:
        """Fraction of dynamic stores that become redundant (footprint
        pressure relief, paper section 1)."""
        if not self.total_dynamic_stores:
            return 0.0
        return self.elidable_dynamic_stores / self.total_dynamic_stores

    def potential_store_energy_nj(self, model: EnergyModel) -> float:
        """Upper bound on store energy recoverable by elision.

        Priced conservatively at one L1 write per elided store (the
        cheapest a store can be); the real saving is larger for stores
        that would have walked further.
        """
        return self.elidable_dynamic_stores * model.config.l1_params.write_energy_nj


def analyse_dead_stores(
    tracker: DependenceTracker,
    swapped_load_pcs: Iterable[int],
) -> DeadStoreAnalysis:
    """Scan a classic trace for stores whose consumers are all swapped.

    Maintains, per address, the store instance currently owning the
    value; loads mark the owner consumed by their static pc, overwrites
    retire the previous owner.
    """
    consumers: Dict[int, Set[int]] = {}  # store pc -> consuming load pcs
    instance_counts: Dict[int, int] = {}
    never_read: Dict[int, int] = {}
    #: address -> (store pc, was this instance read at least once)
    owner: Dict[int, Tuple[int, bool]] = {}

    def retire(address: int) -> None:
        previous = owner.get(address)
        if previous is not None and not previous[1]:
            never_read[previous[0]] = never_read.get(previous[0], 0) + 1

    for record in tracker.records:
        if record.opcode is Opcode.ST and record.address is not None:
            retire(record.address)
            owner[record.address] = (record.pc, False)
            consumers.setdefault(record.pc, set())
            instance_counts[record.pc] = instance_counts.get(record.pc, 0) + 1
            never_read.setdefault(record.pc, 0)
        elif record.opcode is Opcode.LD and record.address is not None:
            current = owner.get(record.address)
            if current is not None:
                store_pc, _ = current
                owner[record.address] = (store_pc, True)
                consumers[store_pc].add(record.pc)
    for address in list(owner):
        retire(address)

    sites = [
        StoreSiteReport(
            store_pc=store_pc,
            dynamic_instances=instance_counts[store_pc],
            consumer_load_pcs=tuple(sorted(consumers[store_pc])),
            never_read_instances=never_read.get(store_pc, 0),
        )
        for store_pc in sorted(instance_counts)
    ]
    return DeadStoreAnalysis(
        sites=sites,
        swapped_load_pcs=set(swapped_load_pcs),
        total_dynamic_stores=sum(instance_counts.values()),
    )


def analysis_for_compilation(compilation) -> DeadStoreAnalysis:
    """Convenience wrapper over a :class:`CompilationResult`."""
    return analyse_dead_stores(
        compilation.profile.dependence, compilation.swapped_load_pcs
    )
