"""Recomputation-slice (RSlice) intermediate representation.

An RSlice is "an upside-down tree with P(v) residing at the root" (paper
section 2.1, Figure 1): every node is a producer instruction to be
re-executed, data flows from the leaves to the root, and each node's
inputs come either from its children (intermediate nodes read the SFile)
or — for leaves — from constants, live architectural registers, or
history-table checkpoints (paper sections 2.2 and 3.2).

This module defines the tree IR the compiler constructs
(:class:`TemplateNode`), the leaf-input classification
(:class:`LeafInputKind`), and the finished :class:`RSlice` artifact with
its cost annotations.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterator, List, Optional, Tuple, Union

from collections import Counter

from ..energy.account import Cost
from ..isa.opcodes import Category, Opcode

Value = Union[int, float]


class LeafInputKind(enum.Enum):
    """How a leaf instruction's source operand is supplied at recompute time."""

    CONST = "const"  # an immediate, or a register proven constant
    LIVE_REG = "live"  # architectural register still holding the value
    HIST = "hist"  # checkpointed in the history table by a REC

    @property
    def needs_checkpoint(self) -> bool:
        """True for the non-recomputable inputs of paper section 2.2."""
        return self is LeafInputKind.HIST


@dataclasses.dataclass
class LeafInput:
    """One source operand of a leaf node, with its supply classification.

    ``kind`` starts as ``HIST`` (the safe assumption) and is relaxed to
    ``LIVE_REG``/``CONST`` by the liveness analysis in
    :mod:`repro.compiler.leaves`.
    """

    position: int
    reg_index: Optional[int] = None  # None for immediates
    const_value: Optional[Value] = None
    kind: LeafInputKind = LeafInputKind.HIST

    @classmethod
    def immediate(cls, position: int, value: Value) -> "LeafInput":
        return cls(position=position, const_value=value, kind=LeafInputKind.CONST)

    @classmethod
    def register(cls, position: int, reg_index: int) -> "LeafInput":
        return cls(position=position, reg_index=reg_index, kind=LeafInputKind.HIST)


@dataclasses.dataclass
class TemplateNode:
    """One producer instruction in a slice tree.

    A node is a *leaf* when ``children`` is empty: all its inputs are in
    ``leaf_inputs``.  Inner nodes carry one child per register source
    operand (``children[i]`` produces source position ``child_positions[i]``)
    and immediates in ``leaf_inputs``.

    ``is_checkpoint_load`` marks the special leaf that stands for a
    non-expanded load: the whole *value* is checkpointed (paper section
    3.5's read-only inputs kept in Hist) and the node lowers to a MOV
    from the history table.
    """

    pc: int
    opcode: Opcode
    children: List["TemplateNode"] = dataclasses.field(default_factory=list)
    child_positions: List[int] = dataclasses.field(default_factory=list)
    #: Register carrying each child edge in the original dataflow; used
    #: to rebuild a LeafInput when the cut turns this node into a leaf.
    child_regs: List[int] = dataclasses.field(default_factory=list)
    leaf_inputs: List[LeafInput] = dataclasses.field(default_factory=list)
    is_checkpoint_load: bool = False

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def walk(self) -> Iterator["TemplateNode"]:
        """Pre-order traversal of the subtree rooted here."""
        yield self
        for child in self.children:
            yield from child.walk()

    def post_order(self) -> Iterator["TemplateNode"]:
        """Children-before-parent traversal (slice execution order)."""
        for child in self.children:
            yield from child.post_order()
        yield self

    @property
    def size(self) -> int:
        """Number of instructions in the subtree."""
        return sum(1 for _ in self.walk())

    @property
    def height(self) -> int:
        """Levels below this node (a lone leaf has height 0)."""
        if self.is_leaf:
            return 0
        return 1 + max(child.height for child in self.children)

    def leaves(self) -> List["TemplateNode"]:
        """All leaf nodes of the subtree, left to right."""
        return [node for node in self.walk() if node.is_leaf]

    def structural_signature(self) -> Tuple:
        """A hashable shape fingerprint used for template stability checks.

        Two dynamic instances of the same load are compatible iff their
        producer trees have identical signatures: same static pcs, same
        opcodes, same topology, same operand layout.
        """
        return (
            self.pc,
            self.opcode.value,
            self.is_checkpoint_load,
            tuple(
                (li.position, li.reg_index, li.const_value if li.reg_index is None else None)
                for li in self.leaf_inputs
            ),
            tuple(self.child_positions),
            tuple(child.structural_signature() for child in self.children),
        )


@dataclasses.dataclass
class RSlice:
    """A finished recomputation slice ready for binary embedding.

    * ``traversal_cost`` — the runtime energy/latency of one traversal
      (RCMP + slice instructions + Hist reads + RTN); this is the
      ``E_rc`` the scheduler's oracle policies compare against the load.
    * ``selection_cost`` — traversal cost plus the amortised main-path
      REC overhead per load; the compiler's selection criterion.
    * ``estimated_load_cost`` — the probabilistic ``E_ld`` from PrLi.
    """

    slice_id: int
    load_pc: int
    root: TemplateNode
    traversal_cost: Cost
    selection_cost: Cost
    estimated_load_cost: Cost

    @property
    def length(self) -> int:
        """Instruction count of the slice (the paper's Figure 6 metric)."""
        return self.root.size

    @property
    def height(self) -> int:
        return self.root.height

    @property
    def leaf_count(self) -> int:
        return len(self.root.leaves())

    @property
    def has_nonrecomputable_inputs(self) -> bool:
        """True if any node input needs a Hist checkpoint (Figure 7).

        Formation can produce *mixed* nodes (some inputs from children,
        some from Hist); any checkpointed input anywhere in the tree
        makes the slice depend on the history table.
        """
        return any(
            leaf_input.kind.needs_checkpoint
            for node in self.root.walk()
            for leaf_input in node.leaf_inputs
        )

    def hist_leaves(self) -> List[TemplateNode]:
        """Nodes with at least one checkpointed input, in slice order.

        Each of these needs a REC checkpoint planted next to its
        original instruction (paper section 3.1.2).
        """
        return [
            node
            for node in self.root.post_order()
            if any(li.kind.needs_checkpoint for li in node.leaf_inputs)
        ]

    def category_counts(self) -> "Counter[Category]":
        """Instruction mix of the slice, for cost estimation."""
        counts: "Counter[Category]" = Counter()
        for node in self.root.walk():
            opcode = Opcode.MOV if node.is_checkpoint_load else node.opcode
            counts[opcode.category] += 1
        return counts
