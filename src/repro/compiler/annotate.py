"""Binary rewriting: embed slices, swap loads for RCMP, plant RECs.

Implements paper section 3.1.2 ("Slice Annotation") on our program
representation:

* each selected load becomes an ``RCMP`` that inherits the load's
  destination and address operands and targets its slice's entry label;
* the slice body is embedded after the program's final ``HALT`` (normal
  control flow can only enter it through the RCMP branch) and ends with
  an ``RTN`` naming the scratch register holding the recomputed value;
* a ``REC`` is planted next to every original instruction whose replica
  serves as a slice node with checkpointed inputs.  Deviation from the
  paper, documented in DESIGN.md: for compute leaves the REC goes
  immediately *before* the instruction rather than after, so that
  in-place updates (``add r1, r1, 1``) checkpoint the instruction's
  inputs, not its result.  Checkpoint-load leaves keep the paper's
  *after* placement since they checkpoint the load's result register.

Slice instructions address the scratch file through virtual
:class:`~repro.isa.operands.SReg` indices (one per node, post-order) and
the history table through :class:`~repro.isa.operands.HistRef` operands
``(leaf_id, slot)``, where ``leaf_id`` is the owning node's post-order
index — the reproduction's concrete spelling of the paper's
``leaf-address``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..errors import CompilationError
from ..isa.instructions import Instruction, rcmp, rec, rtn
from ..isa.opcodes import Opcode
from ..isa.operands import HistRef, Imm, Operand, Reg, SReg
from ..isa.program import Program, SliceRegion
from ..isa.validate import validate_program
from .rslice import LeafInput, LeafInputKind, RSlice, TemplateNode


@dataclasses.dataclass
class SliceInfo:
    """Runtime metadata the amnesic scheduler needs for one slice."""

    rslice: RSlice
    entry_label: str
    #: Node ids (post-order indices) whose Hist entry must be present
    #: before recomputation may fire; missing entries force a fallback.
    hist_leaf_ids: Tuple[int, ...]
    #: Scratch registers used by one traversal (SFile demand).
    sreg_demand: int

    @property
    def slice_id(self) -> int:
        return self.rslice.slice_id

    @property
    def length(self) -> int:
        # The slice tree is immutable once annotation built this info,
        # but RSlice.length walks it; the scheduler reads length on
        # every RCMP decision record, so count once and keep it.
        cached: Optional[int] = self.__dict__.get("_length")
        if cached is None:
            cached = self.__dict__["_length"] = self.rslice.length
        return cached


@dataclasses.dataclass
class AmnesicBinary:
    """An annotated program plus per-slice runtime metadata."""

    program: Program
    slices: Dict[int, SliceInfo]

    @property
    def slice_count(self) -> int:
        return len(self.slices)

    def info_for(self, slice_id: int) -> SliceInfo:
        return self.slices[slice_id]


def rewrite_binary(original: Program, rslices: List[RSlice]) -> AmnesicBinary:
    """Produce the amnesic binary embedding *rslices* into *original*."""
    if original.slices:
        raise CompilationError("program already carries slices; cannot re-annotate")
    swapped = {rs.load_pc: rs for rs in rslices}
    if len(swapped) != len(rslices):
        raise CompilationError("multiple slices target the same load pc")

    plan = _CheckpointPlan(rslices)
    rewritten = Program(f"{original.name}+amnesic")
    rewritten.data = original.data.copy()

    pc_map: Dict[int, int] = {}
    rcmp_new_pcs: Dict[int, int] = {}
    for old_pc, instruction in enumerate(original.instructions):
        pc_map[old_pc] = len(rewritten.instructions)
        for record in plan.before(old_pc):
            rewritten.append(record)
        if old_pc in swapped:
            rslice = swapped[old_pc]
            if instruction.opcode is not Opcode.LD:
                raise CompilationError(
                    f"slice {rslice.slice_id} targets pc {old_pc}, which is "
                    f"not a load"
                )
            rcmp_new_pcs[rslice.slice_id] = len(rewritten.instructions)
            rewritten.append(
                rcmp(
                    dest=instruction.dest,
                    base=instruction.srcs[0],
                    offset=instruction.srcs[1],
                    slice_id=rslice.slice_id,
                    target=_entry_label(rslice.slice_id),
                )
            )
        else:
            rewritten.append(instruction)
        for record in plan.after(old_pc):
            rewritten.append(record)

    main_length = len(rewritten.instructions)
    for label, old_pc in original.labels.items():
        rewritten.add_label(label, pc_map.get(old_pc, main_length))

    infos: Dict[int, SliceInfo] = {}
    for rslice in rslices:
        infos[rslice.slice_id] = _embed_slice(
            rewritten, rslice, rcmp_new_pcs[rslice.slice_id]
        )

    validate_program(rewritten)
    return AmnesicBinary(program=rewritten, slices=infos)


def _entry_label(slice_id: int) -> str:
    return f"rslice_{slice_id}"


class _CheckpointPlan:
    """REC instructions grouped by original pc and placement side."""

    def __init__(self, rslices: List[RSlice]) -> None:
        self._before: Dict[int, List[Instruction]] = {}
        self._after: Dict[int, List[Instruction]] = {}
        for rslice in rslices:
            node_ids = _node_ids(rslice.root)
            for node in rslice.root.post_order():
                hist_slots = _hist_inputs(node)
                if not hist_slots:
                    continue
                leaf_id = node_ids[id(node)]
                operands = tuple(Reg(li.reg_index) for li in hist_slots)
                record = rec(rslice.slice_id, leaf_id, operands)
                side = self._after if node.is_checkpoint_load else self._before
                side.setdefault(node.pc, []).append(record)

    def before(self, pc: int) -> List[Instruction]:
        return self._before.get(pc, [])

    def after(self, pc: int) -> List[Instruction]:
        return self._after.get(pc, [])


def _node_ids(root: TemplateNode) -> Dict[int, int]:
    """Post-order index of every node, keyed by object identity."""
    return {id(node): index for index, node in enumerate(root.post_order())}


def _hist_inputs(node: TemplateNode) -> List[LeafInput]:
    """The node's checkpointed inputs, in slot order."""
    return [
        li
        for li in sorted(node.leaf_inputs, key=lambda li: li.position)
        if li.reg_index is not None and li.kind is LeafInputKind.HIST
    ]


def _embed_slice(program: Program, rslice: RSlice, rcmp_pc: int) -> SliceInfo:
    """Append the lowered slice body; return its runtime metadata."""
    entry_label = _entry_label(rslice.slice_id)
    start = len(program.instructions)
    program.add_label(entry_label, start)

    node_ids = _node_ids(rslice.root)
    hist_leaf_ids: List[int] = []
    max_sreg = 0
    for node in rslice.root.post_order():
        node_id = node_ids[id(node)]
        max_sreg = max(max_sreg, node_id)
        hist_slots = _hist_inputs(node)
        if hist_slots:
            hist_leaf_ids.append(node_id)
        program.append(_lower_node(node, node_id, node_ids, hist_slots, rslice))
    root_id = node_ids[id(rslice.root)]
    program.append(rtn(rslice.slice_id, SReg(root_id)))
    end = len(program.instructions)

    program.register_slice(
        SliceRegion(
            slice_id=rslice.slice_id,
            entry_label=entry_label,
            start=start,
            end=end,
            load_pc=rcmp_pc,
        )
    )
    return SliceInfo(
        rslice=rslice,
        entry_label=entry_label,
        hist_leaf_ids=tuple(hist_leaf_ids),
        sreg_demand=max_sreg + 1,
    )


def _lower_node(
    node: TemplateNode,
    node_id: int,
    node_ids: Dict[int, int],
    hist_slots,
    rslice: RSlice,
) -> Instruction:
    """Lower one template node to a recomputing instruction."""
    if node.is_checkpoint_load:
        return Instruction(
            Opcode.MOV,
            dest=SReg(node_id),
            srcs=(HistRef(node_id, 0),),
            leaf_id=node_id,
            comment=f"checkpointed load @pc{node.pc}",
        )
    arity = len(node.leaf_inputs) + len(node.children)
    operands: List[Optional[Operand]] = [None] * arity
    slot_of = {id(li): slot for slot, li in enumerate(hist_slots)}
    for leaf_input in node.leaf_inputs:
        if leaf_input.reg_index is None:
            operand: Operand = Imm(leaf_input.const_value)
        elif leaf_input.kind is LeafInputKind.LIVE_REG:
            operand = Reg(leaf_input.reg_index)
        else:
            operand = HistRef(node_id, slot_of[id(leaf_input)])
        operands[leaf_input.position] = operand
    for child, position in zip(node.children, node.child_positions):
        operands[position] = SReg(node_ids[id(child)])
    if any(op is None for op in operands):
        raise CompilationError(
            f"slice {rslice.slice_id}: node at pc {node.pc} has an "
            f"unsupplied operand position"
        )
    return Instruction(
        node.opcode,
        dest=SReg(node_id),
        srcs=tuple(operands),
        leaf_id=node_id if hist_slots else None,
    )
