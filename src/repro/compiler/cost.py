"""Cost estimation for the amnesic compiler (paper section 3.1.1).

Two quantities drive every decision:

* ``E_ld`` — the probabilistic energy of the load being considered for a
  swap: ``sum over levels Li of PrLi x EPI(Li)``, with PrLi taken from
  profiling;
* ``E_rc`` — the recomputation cost of a candidate slice: the slice's
  instruction mix priced per category, plus "the cost of retrieving
  input operands of the leaf nodes" (history-table reads), plus the
  RCMP/RTN control overhead of the traversal.

For *selection* the compiler additionally amortises the main-path REC
checkpointing overhead onto each swapped load: a leaf whose producer
executes many times per load drags the whole slice's profitability down,
which is how the pass avoids checkpoint-storms the paper never has to
price because its oracle results bound them.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Dict, Optional

from ..energy.account import Cost, ZERO_COST
from ..energy.model import EnergyModel
from ..machine.config import Level
from ..trace.dependence import DependenceTracker
from ..trace.profile import LoadProfiler
from .rslice import RSlice, TemplateNode


ESTIMATION_GLOBAL = "global"
ESTIMATION_PER_LOAD = "per_load"


@dataclasses.dataclass
class CostContext:
    """Everything cost estimation needs, bundled."""

    model: EnergyModel
    profiler: LoadProfiler
    pc_execution_counts: Counter
    #: How PrLi is estimated.  The paper derives PrLi "from hit and miss
    #: statistics of Li under profiling" — suite-wide per-level counters,
    #: i.e. one distribution shared by every load (``global``, default).
    #: ``per_load`` uses each static load's own service histogram; the
    #: estimation-mode ablation benchmark quantifies the difference.
    estimation: str = ESTIMATION_GLOBAL

    @classmethod
    def from_trace(
        cls,
        model: EnergyModel,
        profiler: LoadProfiler,
        tracker: DependenceTracker,
        estimation: str = ESTIMATION_GLOBAL,
    ) -> "CostContext":
        counts = Counter(record.pc for record in tracker.records)
        return cls(
            model=model,
            profiler=profiler,
            pc_execution_counts=counts,
            estimation=estimation,
        )

    # ------------------------------------------------------------------
    # E_ld.
    # ------------------------------------------------------------------
    def estimated_load_cost(self, load_pc: int) -> Cost:
        """Probabilistic E_ld of the static load at *load_pc*."""
        if self.estimation == ESTIMATION_PER_LOAD:
            probabilities = self.profiler.service_probabilities(load_pc)
        else:
            probabilities = self.profiler.global_probabilities()
        return self.model.probabilistic_load_cost(probabilities)

    def load_cost_at(self, level: Level) -> Cost:
        """Exact per-level load cost (oracle decisions)."""
        return self.model.load_cost_at(level)

    # ------------------------------------------------------------------
    # E_rc.
    # ------------------------------------------------------------------
    def node_cost(self, node: TemplateNode) -> Cost:
        """Cost of re-executing one slice node (no leaf-input retrieval)."""
        from ..isa.opcodes import Opcode

        opcode = Opcode.MOV if node.is_checkpoint_load else node.opcode
        return self.model.slice_instruction_cost(opcode.category)

    def hist_read_cost(self) -> Cost:
        return self.model.hist_read_cost()

    def control_overhead(self) -> Cost:
        """Fixed per-traversal overhead: RCMP + RTN."""
        return self.model.rcmp_cost() + self.model.rtn_cost()

    def traversal_cost(self, root: TemplateNode) -> Cost:
        """E_rc of one traversal of the finished tree *root*.

        Sums node execution costs, history reads for checkpointed leaf
        inputs, and the RCMP/RTN overhead.
        """
        total = self.control_overhead()
        for node in root.walk():
            total = total + self.node_cost(node)
            for leaf_input in node.leaf_inputs:
                if leaf_input.kind.needs_checkpoint:
                    total = total + self.hist_read_cost()
        return total

    def rec_amortization(self, root: TemplateNode, load_pc: int) -> Cost:
        """Amortised main-path REC overhead per dynamic load.

        Each leaf with checkpointed inputs plants one REC next to its
        producer; that REC runs once per producer execution, so its cost
        per load scales with the producer/load execution-count ratio.
        """
        load_count = max(self.pc_execution_counts.get(load_pc, 1), 1)
        total = ZERO_COST
        rec = self.model.rec_cost()
        for node in root.walk():  # mixed nodes can carry checkpoints too
            if not any(li.kind.needs_checkpoint for li in node.leaf_inputs):
                continue
            producer_count = self.pc_execution_counts.get(node.pc, 1)
            total = total + rec.scaled(producer_count / load_count)
        return total

    def selection_cost(self, root: TemplateNode, load_pc: int) -> Cost:
        """The compiler's effective E_rc used for the swap decision."""
        return self.traversal_cost(root) + self.rec_amortization(root, load_pc)

    # ------------------------------------------------------------------
    # Decisions.
    # ------------------------------------------------------------------
    def is_profitable(self, rslice: RSlice) -> bool:
        """The paper's criterion: E_rc must remain below E_ld (energy)."""
        return rslice.selection_cost.energy_nj < rslice.estimated_load_cost.energy_nj
