"""What does the amnesic compiler find in *organic* code?

The packaged suite is calibrated to reproduce the paper's evaluation;
this example runs the compiler over straightforward implementations of
familiar algorithms (matrix multiply, prefix sum, Fibonacci memo table,
histogram, Horner polynomial evaluation) and reports what it could and
could not swap — and why.

The refusals are as instructive as the swaps:

* pure input reads (matmul's A/B, Horner's coefficients) have no
  producer to re-execute;
* loop-carried chains (Fibonacci's table, the histogram's counters)
  cannot be replayed from a single latest checkpoint;
* only genuine produce-then-reload dataflow survives the compiler's
  replay validation.

Run:  python examples/organic_algorithms.py
"""

from repro import compile_amnesic, paper_energy_model
from repro.core.execution import run_amnesic, run_classic
from repro.workloads.kernels.algorithms import ALGORITHMS


def main() -> None:
    model = paper_energy_model()
    print(f"{'kernel':12s} {'loads':>6s} {'swapped':>8s}  "
          f"{'EDP gain':>9s}  refusal reasons")
    for name, build in sorted(ALGORITHMS.items()):
        program, result_base, expected = build()
        compilation = compile_amnesic(program, model)
        classic = run_classic(program, model)
        amnesic = run_amnesic(compilation, "Compiler", model, verify=True)

        # The outputs must be untouched, whatever was swapped.
        measured = amnesic.cpu.memory.read_block(result_base, len(expected))
        assert [float(v) for v in measured] == [
            float(v) for v in expected
        ], f"{name} output diverged"

        gain = 100 * (classic.edp - amnesic.edp) / classic.edp
        reasons = sorted(
            {reason.split(":")[0] for reason in compilation.rejected.values()}
        )
        print(
            f"{name:12s} {len(program.static_loads()) + len(compilation.rslices):6d} "
            f"{len(compilation.rslices):8d}  {gain:8.2f}%  {'; '.join(reasons)}"
        )

    print(
        "\nEvery kernel's output was verified against its Python reference"
        "\nunder amnesic execution - the compiler only ever swaps what it"
        "\ncan prove, and proves only what the history table can replay."
    )


if __name__ == "__main__":
    main()
