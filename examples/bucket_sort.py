"""Bucket-histogram scenario: the memory-bound win (NAS IS flavour).

Integer sort resets its bucket arrays every ranking pass and reads them
back scattered by key.  When the bucket array dwarfs the caches, those
reads walk to main memory at ~60 nJ apiece while the value they fetch
can be re-derived in one or two register operations — recomputation's
best case (the paper reports up to 87% EDP gain on NAS IS).

This example builds the kernel from scratch with the public
ProgramBuilder API (independent of the packaged suite) and prints what
each policy harvests.

Run:  python examples/bucket_sort.py
"""

from repro import ProgramBuilder, evaluate_policies, paper_energy_model
from repro.isa import Opcode

BUCKET_WORDS = 2048  # 2x the scaled L2 -> scattered reads miss far
PASSES = 8
READS_PER_PASS = 384


def build_bucket_kernel() -> "repro.Program":
    b = ProgramBuilder("bucket_sort")
    keys = b.data(
        [(i * 1103515245 + 12345) % (1 << 31) for i in range(1024)], read_only=True
    )
    buckets = b.reserve(BUCKET_WORDS)

    r_keys, r_buckets, marker, key, addr, sink = b.regs(
        "keys", "buckets", "marker", "key", "addr", "sink"
    )
    b.li(r_keys, keys)
    b.li(r_buckets, buckets)
    b.li(sink, 0)

    with b.loop("pass_", 0, PASSES) as pass_index:
        # Reset the buckets with this pass's marker value.  The marker
        # is derived from the (live) pass counter, so the eventual
        # recomputation slice needs no history-table checkpoint.
        b.mul(marker, pass_index, 2246822519)
        b.op(Opcode.XOR, marker, marker, 0x5DEECE66D)
        with b.loop("r", 0, BUCKET_WORDS) as reset_index:
            b.add(addr, r_buckets, reset_index)
            b.st(marker, addr)

        # Key-scattered reads of the bucket array: the swappable loads.
        with b.loop("j", 0, READS_PER_PASS) as j:
            b.mul(key, pass_index, READS_PER_PASS)
            b.add(key, key, j)
            b.op(Opcode.AND, key, key, 1023)
            b.add(key, key, r_keys)
            b.ld(key, key)
            b.op(Opcode.AND, key, key, BUCKET_WORDS - 1)
            b.add(addr, r_buckets, key)
            b.ld(addr, addr)  # <- swapped for recomputation
            b.add(sink, sink, addr)

    out = b.reserve(1)
    r_out = b.reg("out")
    b.li(r_out, out)
    b.st(sink, r_out)
    return b.build()


def main() -> None:
    program = build_bucket_kernel()
    results = evaluate_policies(program, model=paper_energy_model())

    compilation = results["Compiler"].compilation
    print(f"slices: {len(compilation.rslices)} "
          f"(lengths {sorted(rs.length for rs in compilation.rslices)})")
    print(f"rejected loads: {len(compilation.rejected)} "
          f"(key reads are program inputs and cannot be recomputed)")

    print("\npolicy         EDP gain   energy gain   time gain")
    for name, result in results.items():
        print(
            f"{name:12s} {result.edp_gain_percent:8.2f}%  "
            f"{result.energy_gain_percent:10.2f}%  {result.time_gain_percent:8.2f}%"
        )

    best = max(results.values(), key=lambda r: r.edp_gain_percent)
    print(f"\nbest policy: {best.policy} "
          f"({best.edp_gain_percent:.1f}% EDP gain - the paper's IS-class win)")


if __name__ == "__main__":
    main()
