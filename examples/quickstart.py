"""Quickstart: write a kernel, compile it amnesically, compare policies.

The kernel is the canonical produce -> spill -> evict -> reload shape:
each iteration derives a value through a short dependence chain, spills
it, streams enough background data to push the spill out of the close
caches, and reloads it.  The amnesic compiler swaps the reload for a
recomputation slice; the runtime policies then decide, per execution,
whether re-deriving the value beats walking the memory hierarchy.

Run:  python examples/quickstart.py
"""

from repro import ProgramBuilder, evaluate_policies, paper_energy_model
from repro.isa import Opcode


def build_kernel(iterations: int = 64) -> "repro.Program":
    b = ProgramBuilder("quickstart")
    background = b.data([(i * 2654435761) % 97 for i in range(1024)], read_only=True)
    spills = b.reserve(256)

    r_bg, r_spill, seed, value, addr, noise, sink = b.regs(
        "bg", "spill", "seed", "value", "addr", "noise", "sink"
    )
    b.li(r_bg, background)
    b.li(r_spill, spills)
    b.li(sink, 0)

    with b.loop("i", 0, iterations) as i:
        # Produce a value through a dependence chain (the future RSlice).
        b.mul(seed, i, 2654435761)
        b.op(Opcode.MOV, value, seed)
        b.op(Opcode.MUL, value, value, 37)
        b.op(Opcode.ADD, value, value, 1013904223)
        b.op(Opcode.XOR, value, value, 0x5DEECE66D)

        # Spill it to a line-aligned slot.
        b.mul(addr, i, 8)
        b.op(Opcode.AND, addr, addr, 255)
        b.add(addr, addr, r_spill)
        b.st(value, addr)

        # Stream background data: the spill leaves L1 (and often L2).
        with b.loop("j", 0, 20) as j:
            b.mul(noise, i, 20)
            b.add(noise, noise, j)
            b.mul(noise, noise, 8)
            b.op(Opcode.AND, noise, noise, 1023)
            b.add(noise, noise, r_bg)
            b.ld(noise, noise)
            b.add(sink, sink, noise)

        # Reload the spill - the load the compiler will swap for RCMP.
        b.mul(addr, i, 8)
        b.op(Opcode.AND, addr, addr, 255)
        b.add(addr, addr, r_spill)
        b.ld(value, addr)
        b.add(sink, sink, value)

    out = b.reserve(1)
    r_out = b.reg("out")
    b.li(r_out, out)
    b.st(sink, r_out)
    return b.build()


def main() -> None:
    program = build_kernel()
    model = paper_energy_model()
    results = evaluate_policies(program, model=model)

    compilation = results["Compiler"].compilation
    print(f"kernel: {len(program.instructions)} static instructions")
    print(f"slices embedded: {len(compilation.rslices)}")
    for rslice in compilation.rslices:
        print(
            f"  RSlice {rslice.slice_id}: load@pc{rslice.load_pc}, "
            f"{rslice.length} instructions, "
            f"E_rc={rslice.traversal_cost.energy_nj:.2f}nJ vs "
            f"E_ld~{rslice.estimated_load_cost.energy_nj:.2f}nJ, "
            f"{'w/ nc' if rslice.has_nonrecomputable_inputs else 'w/o nc'}"
        )

    print("\npolicy         EDP gain   energy gain   time gain   recomputed")
    for name, result in results.items():
        stats = result.amnesic.stats
        print(
            f"{name:12s} {result.edp_gain_percent:8.2f}%  "
            f"{result.energy_gain_percent:10.2f}%  {result.time_gain_percent:8.2f}%  "
            f"{stats.recomputations_fired:6d}/{stats.rcmp_encountered}"
        )

    # Amnesic execution must be architecturally invisible.
    classic_memory = results["Compiler"].classic.cpu.memory.snapshot()
    amnesic_memory = results["Compiler"].amnesic.cpu.memory.snapshot()
    assert classic_memory == amnesic_memory
    print("\nmemory state identical under classic and amnesic execution: OK")


if __name__ == "__main__":
    main()
