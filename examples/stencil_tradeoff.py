"""Stencil scenario: when always-recomputing backfires (srad flavour).

srad's coefficient tables are almost always L1-resident, yet the
compiler's probabilistic energy model — fed suite-wide miss statistics —
still swaps their loads.  The Compiler policy then re-executes a
six-instruction slice where a 0.88 nJ / 3.66 ns L1 hit would have done,
and EDP *degrades*; the miss-driven FLC policy skips those hits and
keeps the gains from the rare far misses (paper Figure 3, sr bars).

This example sweeps the recomputation-chain length to show the
crossover: short chains break even against L1, long chains lose under
Compiler while FLC stays flat.

Run:  python examples/stencil_tradeoff.py
"""

from repro import ProgramBuilder, evaluate_policies, paper_energy_model
from repro.isa import Opcode

ROWS = 10
HOT_WORDS = 128  # exactly the scaled L1
COLD_WORDS = 4096  # 4x the scaled L2


def build_stencil(chain_length: int) -> "repro.Program":
    b = ProgramBuilder(f"stencil_chain{chain_length}")
    inputs = b.data(
        [(i * 48271) % (1 << 31) for i in range(512)], read_only=True
    )
    cold = b.reserve(COLD_WORDS)
    hot = b.reserve(HOT_WORDS)

    r_in, r_cold, r_hot, seed, coeff, addr, lcg, sink = b.regs(
        "in", "cold", "hot", "seed", "coeff", "addr", "lcg", "sink"
    )
    b.li(r_in, inputs)
    b.li(r_cold, cold)
    b.li(r_hot, hot)
    b.li(lcg, 88172645463325252)
    b.li(sink, 0)

    with b.loop("row", 0, ROWS) as row:
        # Refresh the far field occasionally (keeps some memory traffic).
        b.op(Opcode.AND, addr, row, 3)
        with b.when(Opcode.BEQ, addr, b.zero):
            b.op(Opcode.AND, seed, row, 511)
            b.add(seed, seed, r_in)
            b.ld(seed, seed)
            b.op(Opcode.MOV, coeff, seed)
            for step in range(chain_length - 1):
                b.op(Opcode.MUL if step % 2 else Opcode.ADD, coeff, coeff, 29 + step)
            with b.loop("f", 0, COLD_WORDS) as fill:
                b.add(addr, r_cold, fill)
                b.st(coeff, addr)

        # Recompute the hot coefficient table every row.
        b.op(Opcode.AND, seed, row, 511)
        b.add(seed, seed, r_in)
        b.ld(seed, seed)
        b.op(Opcode.MOV, coeff, seed)
        for step in range(chain_length - 1):
            b.op(Opcode.XOR if step % 2 else Opcode.MUL, coeff, coeff, 37 + step)
        with b.loop("h", 0, HOT_WORDS) as fill:
            b.add(addr, r_hot, fill)
            b.st(coeff, addr)

        # The stencil sweep: mostly hot-table reads, a few far reads.
        with b.loop("c", 0, 160) as col:
            b.mul(lcg, lcg, 1103515245)
            b.add(lcg, lcg, 12345)
            b.op(Opcode.AND, addr, lcg, HOT_WORDS - 1)
            b.add(addr, addr, r_hot)
            b.ld(addr, addr)  # swapped: usually an L1 hit
            b.add(sink, sink, addr)
        with b.loop("g", 0, 14) as far:
            b.mul(lcg, lcg, 1103515245)
            b.add(lcg, lcg, 12345)
            b.op(Opcode.AND, addr, lcg, COLD_WORDS - 1)
            b.add(addr, addr, r_cold)
            b.ld(addr, addr)  # swapped: usually a far miss
            b.add(sink, sink, addr)

    out = b.reserve(1)
    r_out = b.reg("out")
    b.li(r_out, out)
    b.st(sink, r_out)
    return b.build()


def main() -> None:
    model = paper_energy_model()
    print("chain   Compiler EDP   FLC EDP     verdict")
    for chain_length in (1, 3, 6, 9):
        results = evaluate_policies(
            build_stencil(chain_length),
            policies=("Compiler", "FLC"),
            model=model,
        )
        compiler_gain = results["Compiler"].edp_gain_percent
        flc_gain = results["FLC"].edp_gain_percent
        swapped = len(results["Compiler"].compilation.rslices)
        if not swapped:
            verdict = "compiler refuses to swap (E_rc above budget)"
        elif compiler_gain < 0 and flc_gain > compiler_gain + 2:
            verdict = "Compiler degrades - FLC protects"
        elif compiler_gain > 0:
            verdict = "both gain"
        else:
            verdict = "both struggle"
        print(f"{chain_length:5d} {compiler_gain:12.2f}% {flc_gain:9.2f}%    {verdict}")

    print(
        "\nLonger slices cost more than the L1 hits they replace: the"
        "\nalways-firing Compiler policy inverts from winner to loser while"
        "\nthe miss-driven FLC policy stays safe (the paper's sr result)."
    )


if __name__ == "__main__":
    main()
