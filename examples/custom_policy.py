"""Extending the runtime: a miss-predictor firing policy.

Paper section 3.3.1: "Better amnesic policies can be devised by using
more accurate (miss) predictors, which can also help eliminate the
probing overhead.  We leave further refinement ... to future work - the
design space is pretty rich."

This example implements that future work on the public Policy API: a
two-bit saturating miss predictor per RCMP site.  When the predictor is
confident, the decision is made *without* probing (no tag-lookup cost);
only low-confidence decisions pay for an FLC probe, which also trains
the predictor.

Run:  python examples/custom_policy.py
"""

from repro.core.policies import Decision, FLCPolicy, Policy, RcmpContext
from repro.core.execution import run_amnesic, run_classic
from repro import compile_amnesic, paper_energy_model
from repro.machine import Level
from repro.workloads import get


class MissPredictorPolicy(Policy):
    """Two-bit saturating counter per slice: predict miss -> fire free."""

    name = "Predictor"

    def __init__(self):
        self._counters = {}  # slice_id -> 0..3 (>=2 means "will miss")
        self.probes_saved = 0

    def decide(self, context: RcmpContext) -> Decision:
        slice_id = context.slice_info.slice_id
        counter = self._counters.get(slice_id, 2)
        confident = counter in (0, 3)
        if confident:
            # No probe, no probe cost - the predictor's whole point.
            self.probes_saved += 1
            return Decision(fire=(counter == 3))
        # Low confidence: pay one L1 probe and train on the outcome.
        found = context.hierarchy.probe(context.address, through=Level.L1)
        missed = found is None
        counter = min(counter + 1, 3) if missed else max(counter - 1, 0)
        self._counters[slice_id] = counter
        cost = context.hierarchy.probe_cost(found, through=Level.L1)
        from repro.energy import Cost

        return Decision(
            fire=missed,
            probe_cost=Cost(cost.energy_nj, cost.latency_ns),
            probe_hit_level=found,
        )


def main() -> None:
    model = paper_energy_model()
    print("bench   FLC EDP    Predictor EDP   probes saved")
    for bench in ("is", "mcf", "sr"):
        program = get(bench).instantiate(1.0)
        compilation = compile_amnesic(program, model)
        classic = run_classic(program, model)

        flc = run_amnesic(compilation, FLCPolicy(), model)
        predictor_policy = MissPredictorPolicy()
        predicted = run_amnesic(compilation, predictor_policy, model)

        def gain(outcome):
            return 100 * (classic.edp - outcome.edp) / classic.edp

        print(
            f"{bench:5s} {gain(flc):8.2f}% {gain(predicted):12.2f}% "
            f"{predictor_policy.probes_saved:12d}"
        )

    print(
        "\nA confident predictor skips the tag probe entirely; verification"
        "\nstays on, so a wrong 'miss' prediction can only waste energy,"
        "\nnever corrupt state."
    )


if __name__ == "__main__":
    main()
