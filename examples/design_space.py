"""Design-space exploration: when does recomputation stop paying?

Two sweeps over the `is`-class memory-bound kernel:

1. **The R sweep** (paper section 5.5): scale the energy of every
   non-memory instruction — the compute/communication ratio
   ``R = EPI_nonmem / EPI_ld`` — and watch the EDP gain erode toward the
   break-even point.  The paper's Table 6 reports these break-even
   multipliers per benchmark.
2. **The technology sweep** (paper Table 1): replay the evaluation with
   the load/compute energy ratios of the 40nm and 10nm nodes.  The
   colder the technology (dearer communication), the more recomputation
   pays — the trend that motivates the whole idea.

Run:  python examples/design_space.py
"""

from repro import paper_energy_model
from repro.analysis import edp_gain_at_factor, find_breakeven, memory_energy_sweep
from repro.workloads import get


def r_sweep(program, model) -> None:
    print("R multiplier -> EDP gain (C-Oracle), `is` kernel")
    for factor in (1, 2, 4, 8, 16, 32, 64):
        gain = edp_gain_at_factor(program, model, float(factor))
        bar = "#" * max(0, int(gain / 2))
        print(f"  x{factor:<3d} {gain:7.2f}%  {bar}")
    result = find_breakeven("is", program, model, max_factor=128.0)
    if result.converged:
        print(f"  break-even at ~x{result.breakeven_factor:.1f} "
              f"(paper Table 6 range: x3.9 .. x83)")
    else:
        print(f"  still profitable at x{result.breakeven_factor:.0f} (the cap)")


def technology_sweep(program) -> None:
    """Scale memory energy relative to compute, Table 1 style.

    The 22nm baseline has a memory-load/compute ratio of ~130x; we
    sweep the ratio downward (older, communication-friendlier nodes)
    and upward (the projected post-10nm gap), through the library's
    :func:`repro.analysis.memory_energy_sweep`.
    """
    labels = {
        0.25: "communication 4x cheaper (older node)",
        0.5: "communication 2x cheaper",
        1.0: "22nm baseline (paper Table 3)",
        2.0: "communication 2x dearer (scaling trend)",
        4.0: "communication 4x dearer (projected)",
    }
    points = memory_energy_sweep(program, paper_energy_model(),
                                 factors=tuple(labels))
    print("\nmemory-energy scale -> EDP gain (C-Oracle)")
    for point in points:
        print(f"  x{point.parameter:<5} {point.edp_gain_percent:7.2f}%   "
              f"{labels[point.parameter]}")


def main() -> None:
    model = paper_energy_model()
    program = get("is").instantiate(0.5)
    r_sweep(program, model)
    technology_sweep(program)
    print(
        "\nAs technology scaling keeps making communication relatively"
        "\ndearer (Table 1's 1.55x -> ~6x trend), the recomputation margin"
        "\nwidens - and it only collapses if compute energy grows by the"
        "\nlarge multiples of Table 6, which current projections rule out."
    )


if __name__ == "__main__":
    main()
