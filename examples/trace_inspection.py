"""Trace inspection: run one benchmark with telemetry and read the tea
leaves.

Runs the ``is`` (NAS integer sort) benchmark under the FLC policy with a
telemetry session capturing spans and per-RCMP decision records, then
prints:

* the top-5 hottest spans by self time (where the wall clock went
  across profile -> compile -> execute);
* the RCMP fire/skip/fallback breakdown per policy;
* a residence-level histogram of the fired recomputations, rebuilt from
  the JSONL decision records — the paper's Table 5 question ("where
  would the swapped load have been serviced?") answered from the trace
  alone.

Run:  python examples/trace_inspection.py [trace.jsonl]
"""

import sys
from collections import Counter

from repro import evaluate_policies, paper_energy_model, telemetry_session
from repro.telemetry import decision_records, read_events
from repro.telemetry.summary import render_hottest_spans, render_rcmp_breakdown
from repro.workloads.suite import get

BENCHMARK = "is"  # one of the paper's 11 responsive benchmarks
SCALE = 0.5


def main() -> None:
    trace_path = sys.argv[1] if len(sys.argv) > 1 else "trace.jsonl"
    program = get(BENCHMARK).instantiate(SCALE)

    with telemetry_session(trace_path=trace_path) as telemetry:
        evaluate_policies(
            program, policies=("FLC",), model=paper_energy_model()
        )
        print(f"{BENCHMARK} (scale {SCALE}) under FLC\n")
        print(render_hottest_spans(telemetry.tracer.tree(), top=5))
        print()
        print(render_rcmp_breakdown(telemetry.registry))

    # The JSONL trace holds one record per dynamic RCMP; recover the
    # residence profile of the loads that were actually swapped.
    records = decision_records(read_events(trace_path))
    fired = [record for record in records if record["outcome"] == "fired"]
    residences = Counter(record["residence"] for record in fired)
    print(f"\nfired recomputations by residence level ({len(fired)} total):")
    for level in ("L1", "L2", "MEM"):
        count = residences.get(level, 0)
        share = 100.0 * count / len(fired) if fired else 0.0
        print(f"  {level:<4} {count:>6}  ({share:.1f}%)")
    print(f"\nfull trace written to {trace_path}")


if __name__ == "__main__":
    main()
