"""Setup shim: enables `python setup.py develop` where the `wheel`
package (required for PEP 660 editable installs) is unavailable."""
from setuptools import setup

setup()
